// Unit tests for the daemon library (Definition 1 adversaries).
#include "sim/daemon.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <set>

#include "graph/generators.hpp"

namespace specstab {
namespace {

const Graph& ring6() {
  static const Graph g = make_ring(6);
  return g;
}

std::vector<VertexId> all6() { return {0, 1, 2, 3, 4, 5}; }

TEST(DaemonTest, SynchronousSelectsEverything) {
  SynchronousDaemon d;
  EXPECT_EQ(d.select(ring6(), all6(), 0), all6());
  EXPECT_EQ(d.select(ring6(), {2, 4}, 7), (std::vector<VertexId>{2, 4}));
}

TEST(DaemonTest, RoundRobinCyclesFairly) {
  CentralRoundRobinDaemon d;
  std::vector<VertexId> picked;
  for (StepIndex i = 0; i < 6; ++i) {
    const auto sel = d.select(ring6(), all6(), i);
    ASSERT_EQ(sel.size(), 1u);
    picked.push_back(sel[0]);
  }
  EXPECT_EQ(picked, all6());  // visits everyone once per cycle
}

TEST(DaemonTest, RoundRobinSkipsDisabled) {
  CentralRoundRobinDaemon d;
  EXPECT_EQ(d.select(ring6(), {3, 5}, 0), (std::vector<VertexId>{3}));
  EXPECT_EQ(d.select(ring6(), {3, 5}, 1), (std::vector<VertexId>{5}));
  // Wraps around past n-1.
  EXPECT_EQ(d.select(ring6(), {3, 5}, 2), (std::vector<VertexId>{3}));
}

TEST(DaemonTest, RoundRobinResetRestoresCursor) {
  CentralRoundRobinDaemon d;
  (void)d.select(ring6(), all6(), 0);
  (void)d.select(ring6(), all6(), 1);
  d.reset();
  EXPECT_EQ(d.select(ring6(), all6(), 0), (std::vector<VertexId>{0}));
}

TEST(DaemonTest, CentralRandomPicksOneEnabled) {
  CentralRandomDaemon d(42);
  std::set<VertexId> seen;
  for (StepIndex i = 0; i < 100; ++i) {
    const auto sel = d.select(ring6(), {1, 3, 5}, i);
    ASSERT_EQ(sel.size(), 1u);
    EXPECT_TRUE(sel[0] == 1 || sel[0] == 3 || sel[0] == 5);
    seen.insert(sel[0]);
  }
  EXPECT_EQ(seen.size(), 3u);  // eventually picks each
}

TEST(DaemonTest, CentralRandomIsReproducibleAfterReset) {
  CentralRandomDaemon d(7);
  std::vector<VertexId> first;
  for (StepIndex i = 0; i < 10; ++i) first.push_back(d.select(ring6(), all6(), i)[0]);
  d.reset();
  for (StepIndex i = 0; i < 10; ++i) {
    EXPECT_EQ(d.select(ring6(), all6(), i)[0], first[static_cast<std::size_t>(i)]);
  }
}

TEST(DaemonTest, MinAndMaxId) {
  CentralMinIdDaemon lo;
  CentralMaxIdDaemon hi;
  EXPECT_EQ(lo.select(ring6(), {2, 3, 5}, 0), (std::vector<VertexId>{2}));
  EXPECT_EQ(hi.select(ring6(), {2, 3, 5}, 0), (std::vector<VertexId>{5}));
}

TEST(DaemonTest, BernoulliValidation) {
  EXPECT_THROW(DistributedBernoulliDaemon(0.0, 1), std::invalid_argument);
  EXPECT_THROW(DistributedBernoulliDaemon(1.5, 1), std::invalid_argument);
  EXPECT_NO_THROW(DistributedBernoulliDaemon(1.0, 1));
}

TEST(DaemonTest, BernoulliAlwaysNonEmptyAndSubset) {
  DistributedBernoulliDaemon d(0.3, 99);
  for (StepIndex i = 0; i < 200; ++i) {
    const auto sel = d.select(ring6(), {0, 2, 4}, i);
    EXPECT_FALSE(sel.empty());
    for (VertexId v : sel) EXPECT_TRUE(v == 0 || v == 2 || v == 4);
  }
}

TEST(DaemonTest, BernoulliWithPOneIsSynchronous) {
  DistributedBernoulliDaemon d(1.0, 5);
  EXPECT_EQ(d.select(ring6(), all6(), 0), all6());
}

TEST(DaemonTest, RandomSubsetNonEmptySubset) {
  RandomSubsetDaemon d(123);
  for (StepIndex i = 0; i < 200; ++i) {
    const auto sel = d.select(ring6(), all6(), i);
    EXPECT_FALSE(sel.empty());
    EXPECT_TRUE(std::is_sorted(sel.begin(), sel.end()));
    for (VertexId v : sel) EXPECT_GE(v, 0);
  }
}

TEST(DaemonTest, PriorityCentralFollowsPriority) {
  PriorityCentralDaemon d({5, 3, 1});
  EXPECT_EQ(d.select(ring6(), {1, 3}, 0), (std::vector<VertexId>{3}));
  EXPECT_EQ(d.select(ring6(), {1, 2}, 0), (std::vector<VertexId>{1}));
  // Falls back to first enabled when nothing matches.
  EXPECT_EQ(d.select(ring6(), {0, 2}, 0), (std::vector<VertexId>{0}));
}

TEST(DaemonTest, ScheduledDaemonReplaysThenFallsBack) {
  ScheduledDaemon d(std::vector<std::vector<VertexId>>{{1, 2}, {4}});
  EXPECT_EQ(d.select(ring6(), all6(), 0), (std::vector<VertexId>{1, 2}));
  EXPECT_EQ(d.select(ring6(), all6(), 1), (std::vector<VertexId>{4}));
  // Exhausted: synchronous fallback.
  EXPECT_EQ(d.select(ring6(), all6(), 2), all6());
}

TEST(DaemonTest, ScheduledDaemonIntersectsWithEnabled) {
  ScheduledDaemon d(std::vector<std::vector<VertexId>>{{0, 1, 2}});
  EXPECT_EQ(d.select(ring6(), {2, 4}, 0), (std::vector<VertexId>{2}));
}

TEST(DaemonTest, ScheduledDaemonSkipsFullyDisabledEntries) {
  ScheduledDaemon d(std::vector<std::vector<VertexId>>{{0}, {3}});
  // First entry disabled -> falls through to second.
  EXPECT_EQ(d.select(ring6(), {3, 5}, 0), (std::vector<VertexId>{3}));
}

TEST(DaemonTest, ScheduledDaemonReset) {
  ScheduledDaemon d(std::vector<std::vector<VertexId>>{{1}});
  EXPECT_EQ(d.select(ring6(), all6(), 0), (std::vector<VertexId>{1}));
  d.reset();
  EXPECT_EQ(d.select(ring6(), all6(), 0), (std::vector<VertexId>{1}));
}

TEST(DaemonTest, Names) {
  EXPECT_EQ(SynchronousDaemon().name(), "synchronous");
  EXPECT_EQ(DistributedBernoulliDaemon(0.5, 1).name(),
            "distributed-bernoulli(p=0.5)");
}

}  // namespace
}  // namespace specstab
