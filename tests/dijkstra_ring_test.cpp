// Tests for Dijkstra's K-state token ring (the paper's baseline).
#include "baselines/dijkstra_ring.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

using DState = DijkstraRingProtocol::State;
using Legit = std::function<bool(const Graph&, const Config<DState>&)>;

Legit single_token(const DijkstraRingProtocol& proto) {
  return [&proto](const Graph& g, const Config<DState>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

TEST(DijkstraRingTest, ConstructionValidation) {
  EXPECT_THROW(DijkstraRingProtocol(1, 5), std::invalid_argument);
  EXPECT_THROW(DijkstraRingProtocol(5, 4), std::invalid_argument);
  EXPECT_NO_THROW(DijkstraRingProtocol(5, 5));
}

TEST(DijkstraRingTest, BottomEnabledOnEqualOthersOnDiffer) {
  const Graph g = make_ring(4);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  // Uniform config: only the bottom machine holds the token.
  Config<DState> cfg{2, 2, 2, 2};
  EXPECT_TRUE(proto.enabled(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 0), 3);
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "BOTTOM");
  // After the bottom fires, the token moves to vertex 1.
  cfg = {3, 2, 2, 2};
  EXPECT_FALSE(proto.enabled(g, cfg, 0));
  EXPECT_TRUE(proto.enabled(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 1), 3);
  EXPECT_EQ(proto.rule_name(g, cfg, 1), "COPY");
}

TEST(DijkstraRingTest, PrivilegeEqualsEnabledness) {
  const Graph g = make_ring(5);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  const Config<DState> cfg{0, 3, 3, 1, 0};
  for (VertexId v = 0; v < 5; ++v) {
    EXPECT_EQ(proto.privileged(cfg, v), proto.enabled(g, cfg, v));
  }
}

TEST(DijkstraRingTest, AtLeastOneTokenAlways) {
  // Pigeonhole: some vertex is always privileged (no terminal config).
  const Graph g = make_ring(4);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  for (DState a = 0; a < proto.k(); ++a) {
    for (DState b = 0; b < proto.k(); ++b) {
      const Config<DState> cfg{a, b, a, b};
      EXPECT_GE(proto.count_privileged(cfg), 1);
    }
  }
}

TEST(DijkstraRingTest, MaxTokenConfigHasManyTokens) {
  const Graph g = make_ring(6);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  const auto cfg = proto.max_token_config();
  EXPECT_GE(proto.count_privileged(cfg), proto.n() - 1);
}

TEST(DijkstraRingTest, StabilizesUnderSynchronousWithinNSteps) {
  // Section 3: n steps under sd.
  for (VertexId n : {4, 8, 12, 16}) {
    const Graph g = make_ring(n);
    const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
    SynchronousDaemon d;
    RunOptions opt;
    opt.max_steps = 4 * n;
    opt.steps_after_convergence = 0;
    const auto res = run_execution(g, proto, d, proto.max_token_config(), opt,
                                   single_token(proto));
    ASSERT_TRUE(res.converged()) << "n=" << n;
    EXPECT_LE(res.convergence_steps(), dijkstra_sync_bound(n)) << "n=" << n;
  }
}

TEST(DijkstraRingTest, StabilizesUnderCentralSchedules) {
  const Graph g = make_ring(6);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(std::make_unique<CentralRoundRobinDaemon>());
  daemons.push_back(std::make_unique<CentralRandomDaemon>(3));
  daemons.push_back(std::make_unique<PriorityCentralDaemon>(
      DijkstraRingProtocol::token_chase_priority(6)));
  for (auto& d : daemons) {
    RunOptions opt;
    opt.max_steps = 10000;
    opt.steps_after_convergence = 0;
    const auto res = run_execution(g, proto, *d, proto.max_token_config(),
                                   opt, single_token(proto));
    ASSERT_TRUE(res.converged()) << d->name();
  }
}

TEST(DijkstraRingTest, SingleTokenIsClosed) {
  const Graph g = make_ring(5);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 60;
  opt.record_trace = true;
  const auto res =
      run_execution(g, proto, d, Config<DState>{2, 2, 2, 2, 2}, opt);
  for (const auto& cfg : res.trace) {
    EXPECT_EQ(proto.count_privileged(cfg), 1);
  }
}

TEST(DijkstraRingTest, TokenCirculatesFairly) {
  // From a legitimate configuration every vertex is privileged infinitely
  // often (round-robin by construction).
  const Graph g = make_ring(4);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 40;
  std::vector<int> fired(4, 0);
  const StepObserver<DState> obs = [&](StepIndex, const Config<DState>& cfg,
                                       const std::vector<VertexId>& act) {
    for (VertexId v : act) {
      if (proto.privileged(cfg, v)) ++fired[static_cast<std::size_t>(v)];
    }
  };
  (void)run_execution(g, proto, d, Config<DState>{0, 0, 0, 0}, opt, nullptr,
                      obs);
  for (VertexId v = 0; v < 4; ++v) {
    EXPECT_GE(fired[static_cast<std::size_t>(v)], 5) << "v=" << v;
  }
}

TEST(DijkstraRingTest, ChasePriorityShape) {
  const auto p = DijkstraRingProtocol::token_chase_priority(4);
  EXPECT_EQ(p, (std::vector<VertexId>{3, 2, 1, 0}));
}

TEST(DijkstraRingTest, QuadraticWorstCaseExceedsSynchronousCost) {
  // The speculation gap of Section 3 on one instance: the token-chase
  // central schedule costs ~Theta(n^2) steps, the synchronous daemon ~n.
  const VertexId n = 12;
  const Graph g = make_ring(n);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  RunOptions opt;
  opt.max_steps = 100000;
  opt.steps_after_convergence = 0;

  SynchronousDaemon sd;
  const auto sync = run_execution(g, proto, sd, proto.max_token_config(), opt,
                                  single_token(proto));
  PriorityCentralDaemon chase(DijkstraRingProtocol::token_chase_priority(n));
  const auto adv = run_execution(g, proto, chase, proto.max_token_config(),
                                 opt, single_token(proto));
  ASSERT_TRUE(sync.converged());
  ASSERT_TRUE(adv.converged());
  EXPECT_LE(sync.convergence_steps(), n);
  EXPECT_GT(adv.convergence_steps(), 2 * static_cast<StepIndex>(n));
}

}  // namespace
}  // namespace specstab
