// Edge cases across the stack: degenerate topologies (n = 1, 2), the
// identities-matter demonstration (paper Section 4.1 citing Burns &
// Pachl), generalized layouts under the full adversary portfolio, and
// composition across the extension protocols.
#include <gtest/gtest.h>

#include <functional>
#include <string>

#include "baselines/matching.hpp"
#include "baselines/unbounded_unison.hpp"
#include "core/adversarial_configs.hpp"
#include "core/composition.hpp"
#include "core/generalized_ssme.hpp"
#include "core/incremental_legitimacy.hpp"
#include "core/speculation.hpp"
#include "core/ssme.hpp"
#include "extensions/coloring.hpp"
#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/incremental_engine.hpp"
#include "sim/protocol_registry.hpp"

namespace specstab {
namespace {

using Legit = std::function<bool(const Graph&, const Config<ClockValue>&)>;

Legit gamma1(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

// --- Degenerate topologies ---

TEST(EdgeCaseTest, SingleVertexSystemStabilizesAndIsAlwaysSafe) {
  const Graph g = make_path(1);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  EXPECT_EQ(proto.params().diam, 0);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * proto.params().k;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    const auto res = run_execution(
        g, proto, d, random_config(g, proto.clock(), seed), opt,
        gamma1(proto));
    ASSERT_TRUE(res.converged()) << seed;
    // One vertex: safety can never break.
    EXPECT_TRUE(proto.mutex_safe(g, res.final_config));
  }
}

TEST(EdgeCaseTest, TwoVertexSystemHonoursTheoremTwo) {
  const Graph g = make_path(2);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * (proto.params().k + proto.params().n);
  const std::function<bool(const Graph&, const Config<ClockValue>&)> safe =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.mutex_safe(gg, c);
      };
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto res = run_execution(
        g, proto, d, random_config(g, proto.clock(), seed), opt, safe);
    ASSERT_TRUE(res.converged()) << seed;
    EXPECT_LE(res.convergence_steps(), 1) << seed;  // ceil(1/2) = 1
  }
}

TEST(EdgeCaseTest, CompleteGraphHasUnitBound) {
  // diam = 1: safety stabilizes within one synchronous step from any
  // configuration.
  const Graph g = make_complete(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * proto.params().k;
  const std::function<bool(const Graph&, const Config<ClockValue>&)> safe =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.mutex_safe(gg, c);
      };
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto res = run_execution(
        g, proto, d, random_config(g, proto.clock(), seed), opt, safe);
    ASSERT_TRUE(res.converged()) << seed;
    EXPECT_LE(res.convergence_steps(), 1) << seed;
  }
}

// --- Empty and single-vertex graphs, all four engines ---

/// Every engine must return a well-formed *terminated* RunResult on the
/// empty graph: no enabled vertices exist, so the run ends before the
/// daemon is ever consulted — steps = moves = rounds = 0, terminated,
/// no step-cap hit, and an empty final configuration.  The parallel
/// engine additionally runs with more worker threads than vertices
/// (all shard ranges empty).
template <class P, class MakeChecker>
void expect_degenerate_termination(const Graph& g, const P& proto,
                                   const Config<typename P::State>& init,
                                   MakeChecker make_checker) {
  struct EngineCase {
    EngineKind kind;
    unsigned threads;
  };
  constexpr EngineCase kCases[] = {{EngineKind::kReference, 1},
                                   {EngineKind::kIncremental, 1},
                                   {EngineKind::kVector, 1},
                                   {EngineKind::kParallel, 1},
                                   {EngineKind::kParallel, 8}};
  for (const auto& daemon_name :
       {std::string("synchronous"), std::string("central-rr"),
        std::string("bernoulli-0.5"), std::string("random-subset")}) {
    for (const EngineCase c : kCases) {
      RunOptions opt;
      opt.max_steps = 50;
      opt.engine = c.kind;
      opt.threads = c.threads;
      opt.record_trace = true;
      auto daemon = make_daemon(daemon_name, 7);
      auto checker = make_checker();
      const auto res =
          run_with_engine(g, proto, *daemon, init, opt, checker);
      const std::string ctx = "daemon=" + daemon_name + " engine=" +
                              std::string(engine_name(c.kind)) +
                              " threads=" + std::to_string(c.threads);
      EXPECT_TRUE(res.terminated) << ctx;
      EXPECT_FALSE(res.hit_step_cap) << ctx;
      EXPECT_EQ(res.steps, 0) << ctx;
      EXPECT_EQ(res.moves, 0) << ctx;
      EXPECT_EQ(res.rounds, 0) << ctx;
      EXPECT_EQ(res.final_config, init) << ctx;
      // Vacuously legitimate from configuration 0.
      EXPECT_EQ(res.first_legitimate, 0) << ctx;
      EXPECT_EQ(res.last_illegitimate, -1) << ctx;
    }
  }
}

TEST(EdgeCaseTest, EmptyGraphTerminatesOnAllEngines) {
  const Graph g(0);
  {
    const UnboundedUnisonProtocol proto;
    expect_degenerate_termination(
        g, proto, Config<UnboundedUnisonProtocol::State>{},
        [&] { return make_unbounded_unison_checker(proto); });
  }
  {
    const MatchingProtocol proto;
    expect_degenerate_termination(
        g, proto, Config<MatchingProtocol::State>{},
        [&] { return make_matching_checker(proto); });
  }
}

TEST(EdgeCaseTest, SingleVertexMatchingTerminatesOnAllEngines) {
  // An isolated vertex can never match (no neighbor to point at), so
  // once its pointer is null the protocol is silent.  A null init
  // terminates at step 0 on every engine.
  const Graph g(1);
  const MatchingProtocol proto;
  expect_degenerate_termination(g, proto, Config<MatchingProtocol::State>{-1},
                                [&] { return make_matching_checker(proto); });
}

TEST(EdgeCaseTest, SingleVertexUnisonRunsToCapIdenticallyOnAllEngines) {
  // Unbounded unison's guard is vacuously true on an isolated vertex
  // ("no neighbor lags"), so the vertex increments forever — the run is
  // *supposed* to hit the step cap.  Well-formedness here means every
  // engine reports the cap identically: steps = moves = max_steps, one
  // round per step, final clock = init + steps.
  const Graph g(1);
  const UnboundedUnisonProtocol proto;
  struct EngineCase {
    EngineKind kind;
    unsigned threads;
  };
  constexpr EngineCase kCases[] = {{EngineKind::kReference, 1},
                                   {EngineKind::kIncremental, 1},
                                   {EngineKind::kVector, 1},
                                   {EngineKind::kParallel, 1},
                                   {EngineKind::kParallel, 8}};
  for (const EngineCase c : kCases) {
    RunOptions opt;
    opt.max_steps = 40;
    opt.engine = c.kind;
    opt.threads = c.threads;
    auto daemon = make_daemon("synchronous", 1);
    auto checker = make_unbounded_unison_checker(proto);
    const auto res = run_with_engine(
        g, proto, *daemon, Config<UnboundedUnisonProtocol::State>{3}, opt,
        checker);
    const std::string ctx = std::string("engine=") +
                            std::string(engine_name(c.kind)) +
                            " threads=" + std::to_string(c.threads);
    EXPECT_FALSE(res.terminated) << ctx;
    EXPECT_TRUE(res.hit_step_cap) << ctx;
    EXPECT_EQ(res.steps, 40) << ctx;
    EXPECT_EQ(res.moves, 40) << ctx;
    EXPECT_EQ(res.rounds, 40) << ctx;
    ASSERT_EQ(res.final_config.size(), 1u) << ctx;
    EXPECT_EQ(res.final_config[0], 43) << ctx;
  }
}

TEST(EdgeCaseTest, SingleVertexSessionsThreadInvariantThroughRegistry) {
  // The type-erased session path on a single-vertex graph: every
  // non-ring protocol must produce a well-formed SessionResult, and the
  // three alternative engines must match the reference byte for byte
  // (ring-only protocols are skipped — an index ring needs n >= 3).
  const auto& registry = ProtocolRegistry::instance();
  const Graph g(1);
  for (const auto& entry : registry.entries()) {
    if (entry.info.ring_only) continue;
    SessionSpec spec;
    spec.seed = 11;
    spec.engine = EngineKind::kReference;
    const SessionResult ref = entry.run(g, spec);
    ASSERT_EQ(ref.final_state.size(), 1u) << entry.info.name;
    struct EngineCase {
      EngineKind kind;
      unsigned threads;
    };
    constexpr EngineCase kCases[] = {{EngineKind::kIncremental, 1},
                                     {EngineKind::kVector, 1},
                                     {EngineKind::kParallel, 1},
                                     {EngineKind::kParallel, 8}};
    for (const EngineCase c : kCases) {
      spec.engine = c.kind;
      spec.threads = c.threads;
      const SessionResult res = entry.run(g, spec);
      const std::string ctx = entry.info.name + " engine=" +
                              std::string(engine_name(c.kind)) +
                              " threads=" + std::to_string(c.threads);
      EXPECT_EQ(res.final_state, ref.final_state) << ctx;
      EXPECT_EQ(res.final_digest, ref.final_digest) << ctx;
      EXPECT_EQ(res.steps, ref.steps) << ctx;
      EXPECT_EQ(res.moves, ref.moves) << ctx;
      EXPECT_EQ(res.rounds, ref.rounds) << ctx;
      EXPECT_EQ(res.terminated, ref.terminated) << ctx;
      EXPECT_EQ(res.hit_step_cap, ref.hit_step_cap) << ctx;
      EXPECT_EQ(res.converged, ref.converged) << ctx;
    }
  }
}

// --- Identities matter (paper Section 4.1, citing Burns & Pachl [4]) ---

TEST(EdgeCaseTest, AnonymousPrivilegeLayoutCannotBeSafe) {
  // Strip the identities out of the layout (spacing 0: every vertex
  // privileged at the same clock value — the anonymous protocol) and
  // safety becomes impossible inside Gamma_1: the conflict witness is
  // realisable on every topology with n >= 2.  This is the executable
  // face of the paper's "we must assume a system with identities".
  for (const auto& g : {make_ring(6), make_path(4), make_grid(2, 3)}) {
    GeneralizedSsmeParams params =
        GeneralizedSsmeParams::paper(g.n(), diameter(g));
    params.spacing = 0;
    ASSERT_FALSE(gamma1_safe_layout(params));
    const auto conflict = find_gamma1_conflict(g, params);
    ASSERT_TRUE(conflict.has_value());
    const auto cfg =
        gamma1_conflict_config(g, params, conflict->first, conflict->second);
    const GeneralizedSsmeProtocol proto(params);
    EXPECT_TRUE(proto.legitimate(g, cfg));
    // With spacing 0 the conflict configuration is the uniform one:
    // every vertex is privileged simultaneously.
    EXPECT_EQ(proto.count_privileged(g, cfg), g.n());
  }
}

// --- Generalized layout under the full portfolio ---

TEST(EdgeCaseTest, MinimalLayoutStabilizesUnderPortfolio) {
  const Graph g = make_ring(8);
  const auto params = GeneralizedSsmeParams::minimal_safe(
      g.n(), diameter(g), static_cast<ClockValue>(g.n()));
  const GeneralizedSsmeProtocol proto(params);
  auto portfolio = AdversaryPortfolio::standard(0xedbe);
  RunOptions opt;
  opt.max_steps = 200 * (params.k + params.alpha);
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  const auto inits = random_configs(g, proto.clock(), 4, 0x11);
  const auto pm =
      measure_portfolio(g, proto, portfolio, inits, legit, opt);
  EXPECT_TRUE(pm.all_converged);
}

// --- Composition across the extension protocols ---

TEST(EdgeCaseTest, SsmeComposesWithColoring) {
  using Composed = CollateralComposition<SsmeProtocol, ColoringProtocol>;
  const Graph g = make_grid(3, 3);
  const Composed composed{SsmeProtocol::for_graph(g), ColoringProtocol{g}};
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 10 * composed.first().params().k;
  opt.steps_after_convergence = 0;

  auto init = Composed::combine(
      random_config(g, composed.first().clock(), 5),
      monochrome_config(g, 0));
  const std::function<bool(const Graph&, const Config<Composed::State>&)>
      both = [&composed](const Graph& gg, const Config<Composed::State>& c) {
        return composed.first().legitimate(gg, Composed::project_first(c)) &&
               composed.second().legitimate(gg, Composed::project_second(c));
      };
  const auto res = run_execution(g, composed, d, init, opt, both);
  ASSERT_TRUE(res.converged());
  EXPECT_EQ(composed.second().conflict_count(
                g, Composed::project_second(res.final_config)),
            0);
  EXPECT_TRUE(composed.first().mutex_safe(
      g, Composed::project_first(res.final_config)));
}

TEST(EdgeCaseTest, LeaderElectionComposesWithColoring) {
  using Composed =
      CollateralComposition<LeaderElectionProtocol, ColoringProtocol>;
  const Graph g = make_binary_tree(7);
  const Composed composed{LeaderElectionProtocol{g}, ColoringProtocol{g}};
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 200 * g.n();
  auto init = Composed::combine(random_leader_config(g, 3),
                                monochrome_config(g, 1));
  // Both components are silent: the composition terminates in their
  // conjunction.
  const auto res = run_execution(g, composed, d, init, opt);
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(composed.first().legitimate(
      g, Composed::project_first(res.final_config)));
  EXPECT_TRUE(composed.second().legitimate(
      g, Composed::project_second(res.final_config)));
}

// --- Theorem 2 on asymmetric diameter pairs ---

TEST(EdgeCaseTest, WitnessWorksOnNonDiameterPairs) {
  // The two-gradient construction fires for ANY vertex pair, at
  // ceil(dist/2) - 1 — not only for diameter pairs.
  const Graph g = make_ring(12);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  for (const auto& [u, v] : {std::pair<VertexId, VertexId>{0, 3}, {0, 5},
                            {2, 8}}) {
    const auto init = two_gradient_config(g, proto, u, v);
    const auto fire = two_gradient_violation_step(g, u, v);
    RunOptions opt;
    opt.max_steps = fire + 1;
    opt.record_trace = true;
    const auto res = run_execution(g, proto, d, init, opt);
    ASSERT_GT(res.trace.size(), static_cast<std::size_t>(fire));
    const auto& cfg = res.trace[static_cast<std::size_t>(fire)];
    EXPECT_TRUE(proto.privileged(cfg, u)) << u << "," << v;
    EXPECT_TRUE(proto.privileged(cfg, v)) << u << "," << v;
  }
}

}  // namespace
}  // namespace specstab
