// EnabledSet word-level bulk writes — the path the vector engine uses to
// publish 64 guard verdicts per append_mask() call.
//
// The contract under test: a rebuild performed with append_mask() over
// packed verdict words produces exactly the same set (membership bitmap
// and sorted vector) as the per-vertex append() path and as the
// incremental begin_update()/note()/commit() flip path, including at
// word boundaries and for the partial trailing word of a
// non-multiple-of-64 vertex count.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <random>
#include <vector>

#include "sim/enabled_set.hpp"
#include "sim/types.hpp"

namespace specstab {
namespace {

/// Packs a byte-per-vertex verdict array into words and rebuilds `set`
/// through append_mask — the vector engine's publication loop.
void rebuild_from_bytes(EnabledSet& set, const std::vector<std::uint8_t>& on) {
  const auto n = static_cast<VertexId>(on.size());
  set.begin_rebuild();
  for (VertexId base = 0; base < n; base += 64) {
    const VertexId hi = std::min<VertexId>(64, n - base);
    std::uint64_t mask = 0;
    for (VertexId b = 0; b < hi; ++b) {
      mask |= static_cast<std::uint64_t>(
                  on[static_cast<std::size_t>(base + b)] != 0)
              << b;
    }
    set.append_mask(base, mask);
  }
  set.end_rebuild();
}

TEST(EnabledSetTest, AppendMaskMatchesScalarAppend) {
  // Sizes straddling word boundaries: below one word, exact words, and
  // partial trailing words on either side of the boundary.
  for (const VertexId n : {1, 7, 63, 64, 65, 127, 128, 129, 200}) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 977u);
    std::vector<std::uint8_t> on(static_cast<std::size_t>(n));
    for (auto& b : on) b = static_cast<std::uint8_t>(rng() % 2);

    EnabledSet scalar;
    scalar.reset(n);
    scalar.begin_rebuild();
    for (VertexId v = 0; v < n; ++v) {
      if (on[static_cast<std::size_t>(v)] != 0) scalar.append(v);
    }
    scalar.end_rebuild();

    EnabledSet masked;
    masked.reset(n);
    rebuild_from_bytes(masked, on);

    EXPECT_EQ(masked.vertices(), scalar.vertices()) << "n=" << n;
    // The membership bitmap must agree too (the daemon view's contains()).
    for (VertexId v = 0; v < n; ++v) {
      EXPECT_EQ(masked.view().contains(v), scalar.view().contains(v))
          << "n=" << n << " v=" << v;
    }
  }
}

TEST(EnabledSetTest, ShardedRebuildMatchesScalarAppend) {
  // The parallel engine's three-phase rebuild (per-shard fill_words,
  // prefix-sum prepare_scatter, per-shard scatter_words) must reproduce
  // the ordered append() sweep exactly, for shard partitions whose
  // word-aligned boundaries leave unequal and empty shards, and sizes
  // with partial trailing words.
  for (const VertexId n : {1, 7, 63, 64, 65, 97, 129, 200, 513}) {
    std::mt19937_64 rng(static_cast<std::uint64_t>(n) * 1337u);
    // Byte-per-vertex verdicts, zero-padded to a whole word as the
    // fused kernels guarantee.
    std::vector<std::uint8_t> verdicts(
        (static_cast<std::size_t>(n) + 63) / 64 * 64, 0);
    for (VertexId v = 0; v < n; ++v) {
      verdicts[static_cast<std::size_t>(v)] =
          static_cast<std::uint8_t>(rng() % 2);
    }

    EnabledSet scalar;
    scalar.reset(n);
    scalar.begin_rebuild();
    for (VertexId v = 0; v < n; ++v) {
      if (verdicts[static_cast<std::size_t>(v)] != 0) scalar.append(v);
    }
    scalar.end_rebuild();

    for (const std::size_t shards : {std::size_t{1}, std::size_t{2},
                                     std::size_t{3}, std::size_t{8},
                                     std::size_t{16}}) {
      // The engine's word-aligned bounds: empty trailing shards allowed.
      std::vector<VertexId> bounds(shards + 1, 0);
      for (std::size_t k = 1; k < shards; ++k) {
        const auto raw = static_cast<VertexId>(
            (static_cast<std::size_t>(n) * k) / shards);
        bounds[k] = std::min<VertexId>(n, (raw + 63) / 64 * 64);
      }
      bounds[shards] = n;

      EnabledSet sharded;
      sharded.reset(n);
      std::vector<std::size_t> counts(shards, 0);
      for (std::size_t k = 0; k < shards; ++k) {
        counts[k] =
            sharded.fill_words(bounds[k], bounds[k + 1], verdicts.data());
      }
      std::vector<std::size_t> offsets;
      sharded.prepare_scatter(counts, offsets);
      for (std::size_t k = 0; k < shards; ++k) {
        sharded.scatter_words(bounds[k], bounds[k + 1], offsets[k]);
      }

      EXPECT_EQ(sharded.vertices(), scalar.vertices())
          << "n=" << n << " shards=" << shards;
      for (VertexId v = 0; v < n; ++v) {
        ASSERT_EQ(sharded.view().contains(v), scalar.view().contains(v))
            << "n=" << n << " shards=" << shards << " v=" << v;
      }
    }
  }
}

TEST(EnabledSetTest, AppendMaskWordBoundaryPatterns) {
  constexpr VertexId kN = 192;  // three exact words
  const std::uint64_t patterns[] = {
      0u,
      ~0ull,                  // full word
      1u,                     // lowest bit only
      0x8000000000000000ull,  // highest bit only (word-boundary vertex)
      0x8000000000000001ull,  // both boundary bits
      0xAAAAAAAAAAAAAAAAull,  // alternating
  };
  for (const std::uint64_t p0 : patterns) {
    for (const std::uint64_t p1 : patterns) {
      EnabledSet set;
      set.reset(kN);
      set.begin_rebuild();
      set.append_mask(0, p0);
      set.append_mask(64, p1);
      set.append_mask(128, 0x3ull);  // vertices 128, 129
      set.end_rebuild();

      std::vector<VertexId> expected;
      for (VertexId b = 0; b < 64; ++b) {
        if ((p0 >> b) & 1u) expected.push_back(b);
      }
      for (VertexId b = 0; b < 64; ++b) {
        if ((p1 >> b) & 1u) expected.push_back(64 + b);
      }
      expected.push_back(128);
      expected.push_back(129);
      EXPECT_EQ(set.vertices(), expected) << "p0=" << p0 << " p1=" << p1;
    }
  }
}

TEST(EnabledSetTest, PartialTrailingWordIgnoresPaddingBits) {
  // 70 vertices: the second word covers bits 64..69 only.  The packing
  // loop never sets padding bits, and membership stays within range.
  constexpr VertexId kN = 70;
  std::vector<std::uint8_t> on(static_cast<std::size_t>(kN), 0);
  on[63] = 1;
  on[64] = 1;
  on[69] = 1;
  EnabledSet set;
  set.reset(kN);
  rebuild_from_bytes(set, on);
  EXPECT_EQ(set.vertices(), (std::vector<VertexId>{63, 64, 69}));
}

TEST(EnabledSetTest, RebuildAgreesWithIncrementalFlips) {
  // A masked rebuild from the current verdict bytes must land on the same
  // set as the incremental note() flips that produced those verdicts —
  // the invariant the differential suite checks end-to-end through the
  // engines, here isolated to the set structure.
  constexpr VertexId kN = 150;
  std::mt19937_64 rng(42);
  std::vector<std::uint8_t> on(static_cast<std::size_t>(kN), 0);

  EnabledSet flipped;
  flipped.reset(kN);

  for (int round = 0; round < 50; ++round) {
    std::vector<VertexId> dirty;
    for (int k = 0; k < 12; ++k) {
      const auto v = static_cast<VertexId>(rng() % kN);
      on[static_cast<std::size_t>(v)] ^= 1u;
      dirty.push_back(v);
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    flipped.begin_update();
    for (const VertexId v : dirty) {
      flipped.note(v, on[static_cast<std::size_t>(v)] != 0);
    }
    flipped.commit();

    EnabledSet rebuilt;
    rebuilt.reset(kN);
    rebuild_from_bytes(rebuilt, on);
    ASSERT_EQ(rebuilt.vertices(), flipped.vertices()) << "round " << round;
  }
}

// --- apply_delta: the parallel engine's one-shot merged-delta path ---

TEST(EnabledSetTest, ApplyDeltaMatchesNoteCommit) {
  // apply_delta(added, removed) must be observably identical to staging
  // the same flips through begin_update()/note()/commit() — across both
  // commit paths (<= 8 flips: binary-search erase/insert; > 8: linear
  // merge) and including the returned changed flag.
  constexpr VertexId kN = 120;
  std::mt19937_64 rng(7);
  for (int round = 0; round < 200; ++round) {
    std::vector<std::uint8_t> on(static_cast<std::size_t>(kN), 0);
    for (auto& b : on) b = static_cast<std::uint8_t>(rng() % 2);
    std::vector<VertexId> base;
    for (VertexId v = 0; v < kN; ++v) {
      if (on[static_cast<std::size_t>(v)] != 0) base.push_back(v);
    }

    // Flip count straddles the small-flip threshold (8) from both sides.
    const int flips = 1 + static_cast<int>(rng() % 16);
    std::vector<VertexId> dirty;
    for (int k = 0; k < flips; ++k) {
      dirty.push_back(static_cast<VertexId>(rng() % kN));
    }
    std::sort(dirty.begin(), dirty.end());
    dirty.erase(std::unique(dirty.begin(), dirty.end()), dirty.end());
    std::vector<VertexId> added, removed;
    for (const VertexId v : dirty) {
      (on[static_cast<std::size_t>(v)] != 0 ? removed : added).push_back(v);
    }

    EnabledSet staged;
    staged.reset(kN);
    staged.assign(base);
    staged.begin_update();
    for (const VertexId v : dirty) {
      staged.note(v, on[static_cast<std::size_t>(v)] == 0);
    }
    const bool staged_changed = staged.commit();

    EnabledSet delta;
    delta.reset(kN);
    delta.assign(base);
    const bool delta_changed = delta.apply_delta(added, removed);

    ASSERT_EQ(delta.vertices(), staged.vertices()) << "round " << round;
    EXPECT_EQ(delta_changed, staged_changed) << "round " << round;
    // The bitmap stays in lockstep with the vector (daemon-facing view).
    for (VertexId v = 0; v < kN; ++v) {
      ASSERT_EQ(delta.view().contains(v), staged.view().contains(v))
          << "round " << round << " v=" << v;
    }
  }
}

TEST(EnabledSetTest, ApplyDeltaEmptyDeltasReportNoChange) {
  EnabledSet set;
  set.reset(10);
  set.assign({2, 5, 7});
  EXPECT_FALSE(set.apply_delta({}, {}));
  EXPECT_EQ(set.vertices(), (std::vector<VertexId>{2, 5, 7}));
}

// --- commit() contract asserts (regression for the small-flip UB) ---
//
// The small-flip path formerly erased at lower_bound() without checking
// it hit the vertex: a removed_ entry absent from vertices_ (a desynced
// bitmap, e.g. from a buggy caller) erased the *next* vertex — or
// dereferenced end() — silently corrupting the set.  The asserts turn
// that breach into a loud failure in debug builds; these death tests pin
// them down.  NDEBUG builds compile the asserts out, so the tests only
// exist in debug (the CI debug-sanitize matrix leg runs them).
#if !defined(NDEBUG) && defined(GTEST_HAS_DEATH_TEST)

TEST(EnabledSetDeathTest, CommitAssertsOnRemovingAbsentVertex) {
  EnabledSet set;
  set.reset(10);
  set.assign({2, 5, 7});
  // Desync the bitmap from the vector the way a buggy caller would:
  // note(v, false) on a vertex whose bit is set but which is missing
  // from the sorted vector is impossible through the public API, so
  // stage the breach via apply_delta's trusting fast path.
  EXPECT_DEATH((void)set.apply_delta({}, {3}),
               "removed vertex not in the set");
}

TEST(EnabledSetDeathTest, CommitAssertsOnAddingPresentVertex) {
  EnabledSet set;
  set.reset(10);
  set.assign({2, 5, 7});
  EXPECT_DEATH((void)set.apply_delta({5}, {}),
               "added vertex already in the set");
}

#endif  // !NDEBUG && GTEST_HAS_DEATH_TEST

}  // namespace
}  // namespace specstab
