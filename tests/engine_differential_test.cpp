// Differential harness: the incremental dirty-set engine vs the
// reference full-rescan engine vs the vectorized column-scan engine vs
// the sharded parallel engine (at 1, 2 and 8 threads) over a randomized
// grid — every protocol crossed with ring/path/torus/random topologies,
// synchronous / central-rr / bernoulli / random-subset daemons, and many
// seeds.  All engines must produce byte-identical
// final configurations and identical steps/moves/rounds/
// first_legitimate/last_illegitimate/moves_to_convergence (the full
// RunResult metering surface).
//
// The seed count per (protocol, topology, daemon) cell defaults to 200
// (over 20000 scenarios across the suite) and is enlarged further in the
// dedicated CI differential job via SPECSTAB_DIFF_SEEDS.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "baselines/dijkstra_ring.hpp"
#include "baselines/matching.hpp"
#include "baselines/min_plus_one.hpp"
#include "baselines/unbounded_unison.hpp"
#include "campaign/campaign.hpp"
#include "campaign/runner.hpp"
#include "core/adversarial_configs.hpp"
#include "core/incremental_legitimacy.hpp"
#include "core/ssme.hpp"
#include "extensions/coloring.hpp"
#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/incremental_engine.hpp"
#include "sim/protocol_registry.hpp"
#include "test_protocols.hpp"

namespace specstab {
namespace {

std::size_t diff_seeds() {
  if (const char* env = std::getenv("SPECSTAB_DIFF_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 200;
}

const std::vector<std::string>& daemon_axis() {
  static const std::vector<std::string> daemons = {
      "synchronous", "central-rr", "bernoulli-0.5", "random-subset"};
  return daemons;
}

std::vector<Graph> general_topologies() {
  std::vector<Graph> out;
  out.push_back(make_ring(8));
  out.push_back(make_path(9));
  out.push_back(make_torus(3, 4));
  out.push_back(make_random_connected(10, 0.3, 77));
  return out;
}

/// Runs one scenario on all four engines (independent daemon instances,
/// fresh checkers) and asserts the RunResults are identical.  The
/// parallel engine runs at 1, 2 and 8 threads — its contract is
/// byte-identical output at every thread count.
template <ProtocolConcept P, class MakeChecker>
void expect_engines_agree(const Graph& g, const P& proto,
                          const std::string& daemon_name, std::uint64_t seed,
                          const Config<typename P::State>& init,
                          MakeChecker make_checker, RunOptions opt,
                          const std::string& context) {
  auto ref_daemon = make_daemon(daemon_name, seed);
  auto ref_checker = make_checker();
  opt.engine = EngineKind::kReference;
  const auto ref =
      run_with_engine(g, proto, *ref_daemon, init, opt, ref_checker);

  struct EngineCase {
    EngineKind kind;
    unsigned threads;
  };
  constexpr EngineCase kCases[] = {{EngineKind::kIncremental, 1},
                                   {EngineKind::kVector, 1},
                                   {EngineKind::kParallel, 1},
                                   {EngineKind::kParallel, 2},
                                   {EngineKind::kParallel, 8}};
  for (const EngineCase c : kCases) {
    auto daemon = make_daemon(daemon_name, seed);
    auto checker = make_checker();
    opt.engine = c.kind;
    opt.threads = c.threads;
    const auto got = run_with_engine(g, proto, *daemon, init, opt, checker);
    const std::string ctx = context + " engine=" +
                            std::string(engine_name(c.kind)) +
                            " threads=" + std::to_string(c.threads);

    ASSERT_EQ(ref.final_config, got.final_config) << ctx;
    EXPECT_EQ(ref.steps, got.steps) << ctx;
    EXPECT_EQ(ref.moves, got.moves) << ctx;
    EXPECT_EQ(ref.rounds, got.rounds) << ctx;
    EXPECT_EQ(ref.terminated, got.terminated) << ctx;
    EXPECT_EQ(ref.hit_step_cap, got.hit_step_cap) << ctx;
    EXPECT_EQ(ref.first_legitimate, got.first_legitimate) << ctx;
    EXPECT_EQ(ref.last_illegitimate, got.last_illegitimate) << ctx;
    EXPECT_EQ(ref.moves_to_convergence, got.moves_to_convergence) << ctx;
    EXPECT_EQ(ref.rounds_to_convergence, got.rounds_to_convergence) << ctx;
  }
}

/// The randomized sweep shared by the per-protocol tests: every listed
/// topology x every daemon x diff_seeds() seeds.  `make_init` builds the
/// (seeded) random initial configuration, `make_checker` a fresh
/// legitimacy checker per run.
template <class MakeProto, class MakeInit, class MakeCheckerFor>
void differential_sweep(const std::vector<Graph>& topologies,
                        MakeProto make_proto, MakeInit make_init,
                        MakeCheckerFor make_checker_for, StepIndex max_steps,
                        bool stop_at_convergence) {
  const std::size_t seeds = diff_seeds();
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const Graph& g = topologies[t];
    const auto proto = make_proto(g);
    for (const auto& daemon_name : daemon_axis()) {
      for (std::size_t s = 0; s < seeds; ++s) {
        const std::uint64_t seed = 1000003u * (t + 1) + 257u * s + 13u;
        RunOptions opt;
        opt.max_steps = max_steps;
        if (stop_at_convergence) opt.steps_after_convergence = 0;
        const auto init = make_init(g, proto, seed);
        expect_engines_agree(
            g, proto, daemon_name, seed, init,
            [&] { return make_checker_for(proto, g); }, opt,
            "topology#" + std::to_string(t) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

template <class State>
Config<State> uniform_config(const Graph& g, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> pick(lo, hi);
  Config<State> cfg(static_cast<std::size_t>(g.n()));
  for (auto& v : cfg) v = static_cast<State>(pick(rng));
  return cfg;
}

TEST(EngineDifferentialTest, SsmeGamma1) {
  differential_sweep(
      general_topologies(),
      [](const Graph& g) { return SsmeProtocol::for_graph(g); },
      [](const Graph& g, const SsmeProtocol& p, std::uint64_t seed) {
        return random_config(g, p.clock(), seed);
      },
      [](const SsmeProtocol& p, const Graph&) {
        return make_gamma1_checker(p);
      },
      300, true);
}

TEST(EngineDifferentialTest, SsmeMutexSafety) {
  // The safety slice is not closed (legitimacy can be lost and regained),
  // so these runs exercise the re-convergence marker logic; they span the
  // whole window like the campaign's safety cells.
  differential_sweep(
      general_topologies(),
      [](const Graph& g) { return SsmeProtocol::for_graph(g); },
      [](const Graph& g, const SsmeProtocol& p, std::uint64_t seed) {
        return seed % 4 == 0 ? two_gradient_config(g, p)
                             : random_config(g, p.clock(), seed);
      },
      [](const SsmeProtocol& p, const Graph&) {
        return make_mutex_safety_checker(p);
      },
      250, false);
}

TEST(EngineDifferentialTest, DijkstraRing) {
  std::vector<Graph> rings;
  for (VertexId n : {5, 8, 12}) rings.push_back(make_ring(n));
  differential_sweep(
      rings, [](const Graph& g) { return DijkstraRingProtocol::for_ring(g); },
      [](const Graph& g, const DijkstraRingProtocol& p, std::uint64_t seed) {
        return uniform_config<DijkstraRingProtocol::State>(g, 0, p.k() - 1,
                                                           seed);
      },
      [](const DijkstraRingProtocol& p, const Graph&) {
        return make_single_token_checker(p);
      },
      300, true);
}

TEST(EngineDifferentialTest, MinPlusOne) {
  differential_sweep(
      general_topologies(),
      [](const Graph& g) { return MinPlusOneProtocol(g); },
      [](const Graph& g, const MinPlusOneProtocol& p, std::uint64_t seed) {
        // Arbitrary levels across the [0, cap] domain (post-fault).
        return uniform_config<MinPlusOneProtocol::State>(
            g, 0, p.level_cap(), seed);
      },
      [](const MinPlusOneProtocol& p, const Graph&) {
        return make_min_plus_one_checker(p);
      },
      400, true);
}

TEST(EngineDifferentialTest, Matching) {
  differential_sweep(
      general_topologies(), [](const Graph&) { return MatchingProtocol(); },
      [](const Graph& g, const MatchingProtocol&, std::uint64_t seed) {
        // Pointers across the whole corrupted range: null, valid ids,
        // out-of-range garbage.
        return uniform_config<MatchingProtocol::State>(g, -3, g.n() + 2,
                                                       seed);
      },
      [](const MatchingProtocol& p, const Graph&) {
        return make_matching_checker(p);
      },
      400, true);
}

TEST(EngineDifferentialTest, Coloring) {
  differential_sweep(
      general_topologies(), [](const Graph& g) { return ColoringProtocol(g); },
      [](const Graph& g, const ColoringProtocol& p, std::uint64_t seed) {
        return random_coloring_config(g, p.palette_size(), seed);
      },
      [](const ColoringProtocol& p, const Graph&) {
        return make_coloring_checker(p);
      },
      400, true);
}

TEST(EngineDifferentialTest, LeaderElection) {
  differential_sweep(
      general_topologies(),
      [](const Graph& g) { return LeaderElectionProtocol(g); },
      [](const Graph& g, const LeaderElectionProtocol&, std::uint64_t seed) {
        return random_leader_config(g, seed);
      },
      [](const LeaderElectionProtocol& p, const Graph& g) {
        return make_leader_election_checker(p, g);
      },
      500, true);
}

TEST(EngineDifferentialTest, UnboundedUnison) {
  differential_sweep(
      general_topologies(),
      [](const Graph&) { return UnboundedUnisonProtocol(); },
      [](const Graph& g, const UnboundedUnisonProtocol&, std::uint64_t seed) {
        return uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed);
      },
      [](const UnboundedUnisonProtocol& p, const Graph&) {
        return make_unbounded_unison_checker(p);
      },
      400, true);
}

TEST(EngineDifferentialTest, TwoHopRadiusProtocol) {
  // Locality radius 2: exercises multi-hop dirty-set expansion in both
  // the engine and a radius-2 score checker.
  auto make_checker = [](const TwoHopMaxProtocol& p, const Graph&) {
    auto score = [&p](const Graph& gg, const Config<std::int32_t>& cfg,
                      VertexId v) -> std::int32_t {
      return p.enabled(gg, cfg, v) ? 1 : 0;
    };
    auto verdict = [](std::int64_t total) { return total == 0; };
    return LocalScoreChecker<std::int32_t, decltype(score),
                             decltype(verdict)>(score, verdict, 2);
  };
  differential_sweep(
      general_topologies(),
      [](const Graph&) { return TwoHopMaxProtocol(2); },
      [](const Graph& g, const TwoHopMaxProtocol&, std::uint64_t seed) {
        return uniform_config<std::int32_t>(g, 0, 40, seed);
      },
      make_checker, 300, true);
}

TEST(EngineDifferentialTest, ClosureViolationCountsAgree) {
  // The ClosureCounting wrapper must observe the same legitimacy sequence
  // on both engines — checked on the non-closed safety predicate.
  const Graph g = make_ring(10);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  for (std::uint64_t seed = 1; seed <= 20; ++seed) {
    const auto init = seed % 3 == 0 ? two_gradient_config(g, proto)
                                    : random_config(g, proto.clock(), seed);
    RunOptions opt;
    opt.max_steps = 200;
    std::int64_t violations[4] = {0, 0, 0, 0};
    int i = 0;
    for (const EngineKind kind :
         {EngineKind::kReference, EngineKind::kIncremental,
          EngineKind::kVector, EngineKind::kParallel}) {
      auto daemon = make_daemon("bernoulli-0.5", seed);
      ClosureCounting checker(make_mutex_safety_checker(proto));
      opt.engine = kind;
      opt.threads = kind == EngineKind::kParallel ? 3 : 1;
      (void)run_with_engine(g, proto, *daemon, init, opt, checker);
      violations[i++] = checker.violations();
    }
    EXPECT_EQ(violations[0], violations[1]) << "seed=" << seed;
    EXPECT_EQ(violations[0], violations[2]) << "seed=" << seed;
    EXPECT_EQ(violations[0], violations[3]) << "seed=" << seed;
  }
}

TEST(EngineDifferentialTest, RegistryIterationAllEnginesAllProtocols) {
  // The registry replaces the hand-maintained protocol list: every
  // registered protocol — present and future — is differentially tested
  // through the type-erased session API, each supported init crossed
  // with the daemon axis over many seeds, incremental and vector vs
  // reference.  The vector leg also proves registry completeness of the
  // engine: protocols without a SimdEval kernel run its scalar fallback.
  const std::size_t seeds = std::max<std::size_t>(25, diff_seeds() / 8);
  const auto& registry = ProtocolRegistry::instance();
  ASSERT_GE(registry.names().size(), 9u);
  for (const auto& entry : registry.entries()) {
    const Graph g = make_ring(8);
    const VertexId diam = 4;
    for (const auto& daemon_name : daemon_axis()) {
      for (const auto& init : entry.info.inits) {
        for (std::size_t s = 0; s < seeds; ++s) {
          SessionSpec spec;
          spec.daemon = daemon_name;
          spec.init = init;
          spec.seed = 77777u * s + 31u;
          spec.engine = EngineKind::kReference;
          const SessionResult ref = entry.run_on(g, diam, spec);
          struct EngineCase {
            EngineKind kind;
            unsigned threads;
          };
          constexpr EngineCase kCases[] = {{EngineKind::kIncremental, 1},
                                           {EngineKind::kVector, 1},
                                           {EngineKind::kParallel, 2},
                                           {EngineKind::kParallel, 8}};
          for (const EngineCase c : kCases) {
            spec.engine = c.kind;
            spec.threads = c.threads;
            const SessionResult got = entry.run_on(g, diam, spec);
            const std::string ctx = entry.info.name + " daemon=" +
                                    daemon_name + " init=" + init +
                                    " seed=" + std::to_string(spec.seed) +
                                    " engine=" +
                                    std::string(engine_name(c.kind)) +
                                    " threads=" + std::to_string(c.threads);
            ASSERT_EQ(got.final_state, ref.final_state) << ctx;
            ASSERT_EQ(got.final_digest, ref.final_digest) << ctx;
            EXPECT_EQ(got.steps, ref.steps) << ctx;
            EXPECT_EQ(got.moves, ref.moves) << ctx;
            EXPECT_EQ(got.rounds, ref.rounds) << ctx;
            EXPECT_EQ(got.terminated, ref.terminated) << ctx;
            EXPECT_EQ(got.hit_step_cap, ref.hit_step_cap) << ctx;
            EXPECT_EQ(got.converged, ref.converged) << ctx;
            EXPECT_EQ(got.convergence_steps, ref.convergence_steps) << ctx;
            EXPECT_EQ(got.moves_to_convergence, ref.moves_to_convergence)
                << ctx;
            EXPECT_EQ(got.rounds_to_convergence, ref.rounds_to_convergence)
                << ctx;
            EXPECT_EQ(got.closure_violations, ref.closure_violations) << ctx;
            if (::testing::Test::HasFatalFailure()) return;
          }
        }
      }
    }
  }
}

TEST(EngineDifferentialTest, DeltaTracesIdenticalAcrossEngines) {
  // Trace recording is delta-based; both engines must record the same
  // representation (same activated sets, same change lists), and the
  // reconstructed configurations must replay the execution faithfully.
  const Graph g = make_ring(10);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    RunOptions opt;
    opt.max_steps = 120;
    opt.record_trace = true;
    std::vector<Config<ClockValue>> observed;
    RunResult<ClockValue> results[4];
    int i = 0;
    for (const EngineKind kind :
         {EngineKind::kReference, EngineKind::kIncremental,
          EngineKind::kVector, EngineKind::kParallel}) {
      auto daemon = make_daemon("bernoulli-0.5", seed);
      auto checker = make_gamma1_checker(proto);
      opt.engine = kind;
      opt.threads = kind == EngineKind::kParallel ? 3 : 1;
      observed.clear();
      results[i++] = run_with_engine(
          g, proto, *daemon, random_config(g, proto.clock(), seed), opt,
          checker,
          [&observed](StepIndex, const Config<ClockValue>& cfg,
                      const std::vector<VertexId>&) {
            observed.push_back(cfg);  // pre-action configs: gamma_0..k-1
          });
      // The delta trace reconstructs exactly the configurations the
      // observer saw, plus the final one.
      const auto materialized = results[i - 1].trace.materialize();
      ASSERT_EQ(materialized.size(), observed.size() + 1);
      for (std::size_t j = 0; j < observed.size(); ++j) {
        ASSERT_EQ(materialized[j], observed[j]) << "gamma_" << j;
      }
      ASSERT_EQ(materialized.back(), results[i - 1].final_config);
    }
    EXPECT_EQ(results[0].trace, results[1].trace) << "seed=" << seed;
    EXPECT_EQ(results[0].trace, results[2].trace) << "seed=" << seed;
    EXPECT_EQ(results[0].trace, results[3].trace) << "seed=" << seed;
  }
}

TEST(EngineDifferentialTest, CampaignRowsIdenticalAcrossEngines) {
  // End-to-end: a whole campaign grid must aggregate to identical rows
  // under either engine.
  const campaign::CampaignGrid grid = campaign::thm3_grid(/*smoke=*/true);
  campaign::RunnerOptions ref_opt;
  ref_opt.threads = 2;
  ref_opt.engine = EngineKind::kReference;
  campaign::RunnerOptions inc_opt;
  inc_opt.threads = 2;
  inc_opt.engine = EngineKind::kIncremental;
  campaign::RunnerOptions vec_opt;
  vec_opt.threads = 2;
  vec_opt.engine = EngineKind::kVector;
  campaign::RunnerOptions par_opt;
  par_opt.threads = 2;
  par_opt.engine = EngineKind::kParallel;
  const auto ref = campaign::run_campaign(grid, ref_opt);
  const auto inc = campaign::run_campaign(grid, inc_opt);
  const auto vec = campaign::run_campaign(grid, vec_opt);
  const auto par = campaign::run_campaign(grid, par_opt);
  ASSERT_EQ(ref.rows.size(), inc.rows.size());
  ASSERT_EQ(ref.rows.size(), vec.rows.size());
  ASSERT_EQ(ref.rows.size(), par.rows.size());
  for (std::size_t i = 0; i < ref.rows.size(); ++i) {
    EXPECT_TRUE(ref.rows[i] == inc.rows[i]) << "row " << i;
    EXPECT_TRUE(ref.rows[i] == vec.rows[i]) << "row " << i;
    EXPECT_TRUE(ref.rows[i] == par.rows[i]) << "row " << i;
  }
}

}  // namespace
}  // namespace specstab
