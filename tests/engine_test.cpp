// Unit tests for the execution engine: composite atomicity, metering,
// legitimacy tracking, stop conditions.
#include "sim/engine.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/protocol.hpp"

namespace specstab {
namespace {

// Toy protocol: every vertex with a positive counter is enabled and
// decrements.  Terminal iff all zero.  Legitimate iff all <= 1.
struct CountdownProtocol {
  using State = int;
  [[nodiscard]] bool enabled(const Graph&, const Config<State>& cfg,
                             VertexId v) const {
    return cfg[static_cast<std::size_t>(v)] > 0;
  }
  [[nodiscard]] State apply(const Graph&, const Config<State>& cfg,
                            VertexId v) const {
    return cfg[static_cast<std::size_t>(v)] - 1;
  }
  [[nodiscard]] std::string_view rule_name(const Graph&, const Config<State>&,
                                           VertexId) const {
    return "DEC";
  }
};
static_assert(ProtocolConcept<CountdownProtocol>);

// Toy protocol exercising composite atomicity: every vertex is enabled
// once and copies its RIGHT neighbour's pre-state on a ring.  Under the
// synchronous daemon all copies must read the OLD values.
struct RotateOnceProtocol {
  using State = int;
  [[nodiscard]] bool enabled(const Graph&, const Config<State>& cfg,
                             VertexId v) const {
    // Enabled while the "generation" low bit marks v unserved.
    return cfg[static_cast<std::size_t>(v)] >= 0;
  }
  [[nodiscard]] State apply(const Graph& g, const Config<State>& cfg,
                            VertexId v) const {
    const VertexId right = (v + 1) % g.n();
    // Copy neighbour's value, then mark negative (served).
    return -(cfg[static_cast<std::size_t>(right)] + 1);
  }
  [[nodiscard]] std::string_view rule_name(const Graph&, const Config<State>&,
                                           VertexId) const {
    return "ROT";
  }
};
static_assert(ProtocolConcept<RotateOnceProtocol>);

bool all_at_most_one(const Graph&, const Config<int>& cfg) {
  for (int s : cfg) {
    if (s > 1) return false;
  }
  return true;
}

TEST(EngineTest, RunsToTerminalConfiguration) {
  const Graph g = make_ring(4);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  const auto res = run_execution(g, proto, d, Config<int>{3, 1, 0, 2}, opt);
  EXPECT_TRUE(res.terminated);
  EXPECT_FALSE(res.hit_step_cap);
  EXPECT_EQ(res.final_config, (Config<int>{0, 0, 0, 0}));
  EXPECT_EQ(res.steps, 3);   // max initial counter
  EXPECT_EQ(res.moves, 6);   // 3 + 1 + 0 + 2
}

TEST(EngineTest, StepCapRespected) {
  const Graph g = make_ring(4);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 2;
  const auto res = run_execution(g, proto, d, Config<int>{9, 9, 9, 9}, opt);
  EXPECT_TRUE(res.hit_step_cap);
  EXPECT_FALSE(res.terminated);
  EXPECT_EQ(res.steps, 2);
  EXPECT_EQ(res.final_config, (Config<int>{7, 7, 7, 7}));
}

TEST(EngineTest, CompositeAtomicityReadsPreState) {
  const Graph g = make_ring(3);
  RotateOnceProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 1;
  const auto res = run_execution(g, proto, d, Config<int>{10, 20, 30}, opt);
  // Every vertex copied its right neighbour's OLD value (then negated).
  EXPECT_EQ(res.final_config, (Config<int>{-21, -31, -11}));
}

TEST(EngineTest, LegitimacyFirstAndLastTracked) {
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  const auto res = run_execution(g, proto, d, Config<int>{3, 0}, opt,
                                 all_at_most_one);
  // Configs: (3,0) (2,0) (1,0) (0,0): legitimate from index 2 on.
  EXPECT_TRUE(res.converged());
  EXPECT_EQ(res.last_illegitimate, 1);
  EXPECT_EQ(res.first_legitimate, 2);
  EXPECT_EQ(res.convergence_steps(), 2);
  EXPECT_EQ(res.moves_to_convergence, 2);
}

TEST(EngineTest, ImmediatelyLegitimate) {
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  const auto res =
      run_execution(g, proto, d, Config<int>{1, 1}, opt, all_at_most_one);
  EXPECT_EQ(res.convergence_steps(), 0);
  EXPECT_EQ(res.first_legitimate, 0);
  EXPECT_EQ(res.moves_to_convergence, 0);
}

TEST(EngineTest, StepsAfterConvergenceStopsEarly) {
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 1000;
  opt.steps_after_convergence = 0;
  const auto res = run_execution(g, proto, d, Config<int>{100, 1}, opt,
                                 [](const Graph&, const Config<int>& c) {
                                   return c[0] <= 50;
                                 });
  // Stops as soon as the predicate holds (50 steps in), not at terminal.
  EXPECT_FALSE(res.terminated);
  EXPECT_FALSE(res.hit_step_cap);
  EXPECT_EQ(res.convergence_steps(), 50);
  EXPECT_EQ(res.steps, 50);
}

TEST(EngineTest, TraceRecordsEveryConfiguration) {
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, Config<int>{2, 1}, opt);
  ASSERT_EQ(res.trace.size(), 3u);  // gamma_0, gamma_1, gamma_2
  EXPECT_EQ(res.trace[0], (Config<int>{2, 1}));
  EXPECT_EQ(res.trace[1], (Config<int>{1, 0}));
  EXPECT_EQ(res.trace[2], (Config<int>{0, 0}));
}

TEST(EngineTest, DeltaTraceStoresChangesNotConfigurations) {
  // CountdownProtocol decrements positive vertices: from {2, 1} the
  // synchronous run takes 2 actions, but only 3 states ever change — the
  // trace must hold exactly those deltas, plus each action's activated
  // set, and reconstruct every configuration on demand.
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, Config<int>{2, 1}, opt);
  const auto& trace = res.trace;
  ASSERT_EQ(trace.actions(), 2u);
  EXPECT_EQ(trace.activated_at(0).size(), 2u);  // both enabled
  EXPECT_EQ(trace.changes_at(0).size(), 2u);
  EXPECT_EQ(trace.activated_at(1).size(), 1u);  // only vertex 0 remains
  ASSERT_EQ(trace.changes_at(1).size(), 1u);
  EXPECT_EQ(trace.changes_at(1)[0].v, 0);
  EXPECT_EQ(trace.changes_at(1)[0].before, 1);
  EXPECT_EQ(trace.changes_at(1)[0].after, 0);
  // Random access, front/back, iteration and materialize all agree.
  EXPECT_EQ(trace.front(), (Config<int>{2, 1}));
  EXPECT_EQ(trace.back(), res.final_config);
  const auto full = trace.materialize();
  ASSERT_EQ(full.size(), trace.size());
  std::size_t i = 0;
  for (const auto& cfg : trace) {
    EXPECT_EQ(cfg, full[i]) << "gamma_" << i;
    ++i;
  }
  EXPECT_EQ(i, trace.size());
  EXPECT_THROW((void)trace.at(trace.size()), std::out_of_range);

  // A run without recording carries an empty trace.
  opt.record_trace = false;
  const auto bare = run_execution(g, proto, d, Config<int>{2, 1}, opt);
  EXPECT_TRUE(bare.trace.empty());
  EXPECT_EQ(bare.trace.size(), 0u);
}

TEST(EngineTest, ObserverSeesPreConfigAndActivation) {
  const Graph g = make_path(2);
  CountdownProtocol proto;
  CentralMinIdDaemon d;
  RunOptions opt;
  std::vector<std::pair<StepIndex, std::vector<VertexId>>> log;
  const StepObserver<int> obs = [&](StepIndex i, const Config<int>&,
                                    const std::vector<VertexId>& act) {
    log.emplace_back(i, act);
  };
  (void)run_execution(g, proto, d, Config<int>{1, 1}, opt, nullptr, obs);
  ASSERT_EQ(log.size(), 2u);
  EXPECT_EQ(log[0].second, (std::vector<VertexId>{0}));  // min id first
  EXPECT_EQ(log[1].second, (std::vector<VertexId>{1}));
}

TEST(EngineTest, CentralDaemonCountsMovesPerAction) {
  const Graph g = make_ring(4);
  CountdownProtocol proto;
  CentralRoundRobinDaemon d;
  RunOptions opt;
  const auto res = run_execution(g, proto, d, Config<int>{1, 1, 1, 1}, opt);
  EXPECT_EQ(res.steps, 4);
  EXPECT_EQ(res.moves, 4);  // central: one move per step
  EXPECT_TRUE(res.terminated);
}

TEST(EngineTest, LegitimacyLossIsReflected) {
  // Predicate that holds initially and breaks mid-run: first_legitimate
  // must move past the last violation.
  const Graph g = make_path(2);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  const auto res = run_execution(
      g, proto, d, Config<int>{4, 0}, opt,
      [](const Graph&, const Config<int>& c) { return c[0] != 2; });
  // Configs: 4,3,2,1,0 — violation at index 2 only.
  EXPECT_EQ(res.last_illegitimate, 2);
  EXPECT_EQ(res.first_legitimate, 3);
  EXPECT_EQ(res.convergence_steps(), 3);
}

}  // namespace
}  // namespace specstab
