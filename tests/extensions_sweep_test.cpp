// Cross-topology property sweeps for the Section-6 extension protocols:
// convergence, silence and spec correctness across every generator family
// under synchronous and central daemons.
#include <gtest/gtest.h>

#include <functional>

#include "extensions/coloring.hpp"
#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

struct SweepCase {
  const char* family;
  Graph graph;
};

std::vector<SweepCase> families() {
  return {
      {"ring", make_ring(10)},
      {"path", make_path(10)},
      {"star", make_star(10)},
      {"complete", make_complete(8)},
      {"grid", make_grid(3, 4)},
      {"torus", make_torus(3, 4)},
      {"hypercube", make_hypercube(3)},
      {"btree", make_binary_tree(15)},
      {"wheel", make_wheel(9)},
      {"petersen", make_petersen()},
      {"caterpillar", make_caterpillar(5, 2)},
      {"bipartite", make_complete_bipartite(4, 5)},
      {"lollipop", make_lollipop(4, 5)},
      {"random", make_random_connected(14, 0.25, 3)},
  };
}

class ExtensionSweep : public ::testing::TestWithParam<int> {};

TEST_P(ExtensionSweep, LeaderElectionConvergesOnEveryFamily) {
  const auto cases = families();
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  const LeaderElectionProtocol proto(c.graph);
  const LegitimacyPredicate<LeaderState> legit =
      [&proto](const Graph& g, ConfigView<LeaderState> cfg) {
        return proto.legitimate(g, cfg);
      };
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SynchronousDaemon sd;
    CentralRoundRobinDaemon rr;
    for (Daemon* d : {static_cast<Daemon*>(&sd), static_cast<Daemon*>(&rr)}) {
      RunOptions opt;
      opt.max_steps = 500 * c.graph.n();
      const auto res = run_execution(c.graph, proto, *d,
                                     random_leader_config(c.graph, seed), opt,
                                     legit);
      ASSERT_TRUE(res.terminated) << c.family << " " << d->name() << " "
                                  << seed;
      EXPECT_TRUE(proto.legitimate(c.graph, res.final_config))
          << c.family << " " << d->name() << " " << seed;
    }
  }
}

TEST_P(ExtensionSweep, ColoringConvergesProperlyOnEveryFamily) {
  const auto cases = families();
  const auto& c = cases[static_cast<std::size_t>(GetParam())];
  const ColoringProtocol proto(c.graph);
  const std::function<bool(const Graph&, const Config<std::int32_t>&)> legit =
      [&proto](const Graph& g, const Config<std::int32_t>& cfg) {
        return proto.legitimate(g, cfg);
      };
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    SynchronousDaemon sd;
    CentralRandomDaemon random(seed + 1);
    for (Daemon* d :
         {static_cast<Daemon*>(&sd), static_cast<Daemon*>(&random)}) {
      RunOptions opt;
      opt.max_steps = 2000 * c.graph.n();
      const auto init = seed == 0
                            ? monochrome_config(c.graph, 0)
                            : random_coloring_config(
                                  c.graph, proto.palette_size(), seed);
      const auto res = run_execution(c.graph, proto, *d, init, opt, legit);
      ASSERT_TRUE(res.terminated) << c.family << " " << d->name() << " "
                                  << seed;
      EXPECT_EQ(proto.conflict_count(c.graph, res.final_config), 0)
          << c.family << " " << d->name() << " " << seed;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllFamilies, ExtensionSweep,
                         ::testing::Range(0, 14));

}  // namespace
}  // namespace specstab
