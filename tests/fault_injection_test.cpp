// Fault-injection tests: transient corruption mid-run followed by
// re-stabilization — the operational meaning of self-stabilization.
#include <gtest/gtest.h>

#include <functional>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

using Legit = std::function<bool(const Graph&, const Config<ClockValue>&)>;

Legit gamma1(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

// Runs until Gamma_1, injects `victims` corrupted registers, then reruns:
// the protocol must re-stabilize each time.
TEST(FaultInjectionTest, RepeatedTransientFaultsAlwaysRecovered) {
  const Graph g = make_grid(3, 3);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4000;
  opt.steps_after_convergence = 20;

  Config<ClockValue> cfg = random_config(g, proto.clock(), 1);
  for (int wave = 0; wave < 6; ++wave) {
    const auto res = run_execution(g, proto, d, cfg, opt, gamma1(proto));
    ASSERT_TRUE(res.converged()) << "wave " << wave;
    EXPECT_TRUE(proto.legitimate(g, res.final_config));
    // Corrupt 1..n registers for the next wave.
    const VertexId victims = 1 + (wave * 2) % g.n();
    cfg = inject_fault(res.final_config, proto.clock(), victims,
                       1000u + static_cast<std::uint64_t>(wave));
  }
}

TEST(FaultInjectionTest, SingleRegisterFaultHealsQuickly) {
  // A single corrupted register still obeys the global Theorem 2 bound
  // for safety, and usually heals much faster.
  const Graph g = make_ring(10);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;

  // Converge first.
  RunOptions opt;
  opt.max_steps = 4000;
  opt.steps_after_convergence = 0;
  const auto clean =
      run_execution(g, proto, d, random_config(g, proto.clock(), 3), opt,
                    gamma1(proto));
  ASSERT_TRUE(clean.converged());

  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto faulty =
        inject_fault(clean.final_config, proto.clock(), 1, seed);
    RunOptions opt2;
    opt2.max_steps = 4000;
    opt2.steps_after_convergence = 40;
    const auto res = run_execution(
        g, proto, d, faulty, opt2,
        [&proto](const Graph& gg, const Config<ClockValue>& c) {
          return proto.mutex_safe(gg, c);
        });
    ASSERT_TRUE(res.converged()) << "seed " << seed;
    EXPECT_LE(res.convergence_steps(), ssme_sync_bound(proto.params().diam))
        << "seed " << seed;
  }
}

TEST(FaultInjectionTest, AdversarialFaultThenAsynchronousRecovery) {
  const Graph g = make_path(8);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  // The crafted witness IS a worst-case transient fault; recover from it
  // under an asynchronous daemon.
  const auto init = two_gradient_config(g, proto);
  DistributedBernoulliDaemon d(0.5, 77);
  RunOptions opt;
  opt.max_steps = 300000;
  opt.steps_after_convergence = 50;
  const auto res = run_execution(g, proto, d, init, opt, gamma1(proto));
  ASSERT_TRUE(res.converged());
  EXPECT_TRUE(proto.mutex_safe(g, res.final_config));
}

TEST(FaultInjectionTest, WholeSystemCorruptionIsJustAnotherStart) {
  // Corrupting all n registers == an arbitrary initial configuration:
  // convergence must still hold (the defining property).
  const Graph g = make_binary_tree(7);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4000;
  const auto base = zero_config(g);
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto nuked = inject_fault(base, proto.clock(), g.n(), seed);
    const auto res = run_execution(g, proto, d, nuked, opt, gamma1(proto));
    ASSERT_TRUE(res.converged()) << "seed " << seed;
  }
}

}  // namespace
}  // namespace specstab
