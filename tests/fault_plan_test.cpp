// Tests for the fault-injection subsystem (sim/fault_plan.hpp): spec
// parsing, plan determinism and victim-selection properties, the
// recovery meter, service-stall windows, and a hand-computable min+1
// fixture whose corruption epochs and steps-to-legitimacy are known
// exactly and must agree across all four engines, both layouts, and
// every thread count.
#include "sim/fault_plan.hpp"

#include <gtest/gtest.h>

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "baselines/min_plus_one.hpp"
#include "core/incremental_legitimacy.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/incremental_engine.hpp"

namespace specstab {
namespace {

using I32 = std::int32_t;

TEST(FaultSpecTest, ParsesAndFormatsCanonically) {
  // parse() accepts `,` separators; format() always emits the CSV-safe
  // `;`-joined canonical form, which round-trips exactly.
  const FaultSpec spec = FaultSpec::parse("periodic:period=16,k=2,epochs=3");
  EXPECT_EQ(spec.kind, FaultKind::kPeriodic);
  EXPECT_EQ(spec.period, 16);
  EXPECT_EQ(spec.k, 2);
  EXPECT_EQ(spec.epochs, 3);
  EXPECT_EQ(spec.start, 16);  // start defaults to period
  EXPECT_EQ(spec.format(), "periodic:period=16;k=2;epochs=3;start=16");
  EXPECT_EQ(FaultSpec::parse(spec.format()), spec);

  EXPECT_FALSE(FaultSpec::parse("none").active());
  EXPECT_FALSE(FaultSpec::parse("").active());
  EXPECT_EQ(FaultSpec{}.format(), "none");

  const FaultSpec defaults = FaultSpec::parse("burst");
  EXPECT_EQ(defaults.kind, FaultKind::kBurst);
  EXPECT_EQ(defaults.period, 64);
  EXPECT_EQ(defaults.start, 64);
  EXPECT_EQ(defaults.k, 1);
  EXPECT_EQ(defaults.epochs, 4);

  const FaultSpec immediate = FaultSpec::parse("adversarial:start=0;k=3");
  EXPECT_EQ(immediate.kind, FaultKind::kAdversarial);
  EXPECT_EQ(immediate.start, 0);
  EXPECT_EQ(immediate.k, 3);
}

TEST(FaultSpecTest, RejectsMalformedSpecs) {
  EXPECT_THROW((void)FaultSpec::parse("gamma:k=1"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:k"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:k=two"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:radius=2"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:period=0"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:k=0"), std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:epochs=0"),
               std::invalid_argument);
  EXPECT_THROW((void)FaultSpec::parse("periodic:start=-1"),
               std::invalid_argument);
}

/// Deterministic scalar pool for plan unit tests: every entry is a
/// function of (seed, index) only.
Config<I32> scalar_pool(std::size_t n, std::uint64_t seed) {
  Config<I32> c(n, 0);
  for (std::size_t i = 0; i < n; ++i) {
    c[i] = static_cast<I32>((seed + 31 * i) % 97);
  }
  return c;
}

TEST(FaultPlanTest, SameSpecAndSeedDrawIdenticalEpochs) {
  const Graph g = make_ring(12);
  const Config<I32> live(12, 0);
  const auto pool = [](std::uint64_t s) { return scalar_pool(12, s); };
  const FaultSpec spec = FaultSpec::parse("periodic:k=3;epochs=4;period=8");
  FaultPlan<I32> a(spec, 42, 1, pool, nullptr);
  FaultPlan<I32> b(spec, 42, 1, pool, nullptr);
  FaultPlan<I32> other_seed(spec, 43, 1, pool, nullptr);

  bool seeds_diverged = false;
  for (int e = 0; e < 4; ++e) {
    const StepIndex step = 8 * (e + 1);
    const Perturbation<I32> pa = a.fire(g, live, step);
    const Perturbation<I32>& pb = b.fire(g, live, step);
    const Perturbation<I32>& pc = other_seed.fire(g, live, step);
    EXPECT_EQ(pa.victims, pb.victims) << "epoch " << e;
    EXPECT_EQ(pa.values, pb.values) << "epoch " << e;
    ASSERT_EQ(pa.victims.size(), 3u);
    EXPECT_TRUE(std::is_sorted(pa.victims.begin(), pa.victims.end()));
    EXPECT_EQ(std::adjacent_find(pa.victims.begin(), pa.victims.end()),
              pa.victims.end());
    seeds_diverged =
        seeds_diverged || pa.victims != pc.victims || pa.values != pc.values;
  }
  EXPECT_TRUE(seeds_diverged);
  EXPECT_TRUE(a.exhausted());
  EXPECT_THROW((void)a.fire(g, live, 99), std::logic_error);
}

TEST(FaultPlanTest, BurstVictimsFormAConnectedCluster) {
  const Graph g = make_ring(16);
  const Config<I32> live(16, 0);
  const auto pool = [](std::uint64_t s) { return scalar_pool(16, s); };
  const FaultSpec spec = FaultSpec::parse("burst:k=5;epochs=6;period=4");
  FaultPlan<I32> plan(spec, 7, 1, pool, nullptr);
  for (int e = 0; e < 6; ++e) {
    const Perturbation<I32>& pert = plan.fire(g, live, 4 * (e + 1));
    ASSERT_EQ(pert.victims.size(), 5u) << "epoch " << e;
    // Flood from the first victim over edges inside the victim set; a
    // BFS cluster must be reachable in its induced subgraph.
    std::vector<char> in(16, 0), seen(16, 0);
    for (const VertexId v : pert.victims) in[static_cast<std::size_t>(v)] = 1;
    std::vector<VertexId> queue{pert.victims.front()};
    seen[static_cast<std::size_t>(pert.victims.front())] = 1;
    for (std::size_t head = 0; head < queue.size(); ++head) {
      for (const VertexId u : g.neighbors(queue[head])) {
        const auto ui = static_cast<std::size_t>(u);
        if (in[ui] && !seen[ui]) {
          seen[ui] = 1;
          queue.push_back(u);
        }
      }
    }
    EXPECT_EQ(queue.size(), pert.victims.size()) << "epoch " << e;
  }
}

TEST(FaultPlanTest, VictimCountIsClampedToTheGraph) {
  const Graph g = make_path(5);
  const Config<I32> live(5, 0);
  const auto pool = [](std::uint64_t s) { return scalar_pool(5, s); };
  FaultPlan<I32> plan(FaultSpec::parse("periodic:k=100"), 3, 1, pool, nullptr);
  const Perturbation<I32>& pert = plan.fire(g, live, 64);
  EXPECT_EQ(pert.victims, (std::vector<VertexId>{0, 1, 2, 3, 4}));
  EXPECT_EQ(pert.values.size(), 5u);
}

TEST(FaultPlanTest, FiresOnScheduleAndOnStall) {
  const Graph g = make_ring(8);
  const Config<I32> live(8, 0);
  const auto pool = [](std::uint64_t s) { return scalar_pool(8, s); };
  FaultPlan<I32> plan(FaultSpec::parse("periodic:period=10;start=5;epochs=2"),
                      11, 1, pool, nullptr);
  EXPECT_EQ(plan.next_fire_step(), 5);
  EXPECT_FALSE(plan.due(4, /*stalled=*/false));
  EXPECT_TRUE(plan.due(5, /*stalled=*/false));
  EXPECT_TRUE(plan.due(0, /*stalled=*/true));  // stalls fire early
  (void)plan.fire(g, live, 5);
  EXPECT_EQ(plan.next_fire_step(), 15);
  (void)plan.fire(g, live, 15);
  EXPECT_TRUE(plan.exhausted());
  EXPECT_FALSE(plan.due(99, /*stalled=*/true));
}

TEST(FaultPlanTest, ConstructorValidatesItsInputs) {
  const auto pool = [](std::uint64_t s) { return scalar_pool(4, s); };
  EXPECT_THROW(FaultPlan<I32>(FaultSpec{}, 1, 1, pool, nullptr),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan<I32>(FaultSpec::parse("periodic"), 1, 1, nullptr,
                              nullptr),
               std::invalid_argument);
  EXPECT_THROW(FaultPlan<I32>(FaultSpec::parse("adversarial"), 1, 1, pool,
                              nullptr),
               std::invalid_argument);
}

TEST(RecoveryMeterTest, MetersEpochsAndSealsUnrecoveredOnes) {
  RecoveryMeter m;
  m.on_verdict(0, true);  // no epoch awaiting: ignored
  m.on_fire(10);
  m.on_verdict(10, false);
  m.on_verdict(12, false);
  m.on_verdict(13, true);   // recovered 3 steps after the corruption
  m.on_verdict(14, true);   // post-recovery verdicts are ignored
  m.on_fire(20);
  m.on_verdict(20, true);   // corruption landed legitimate: recovery 0
  m.on_fire(30);            // never recovers: sealed as -1 by finish()
  const PerturbationStats stats = m.finish();
  EXPECT_EQ(stats.epochs_fired, 3);
  EXPECT_EQ(stats.fire_steps, (std::vector<StepIndex>{10, 20, 30}));
  EXPECT_EQ(stats.recovery_steps, (std::vector<StepIndex>{3, 0, -1}));
  EXPECT_EQ(stats.unrecovered(), 1);
}

TEST(RecoveryMeterTest, NextFireSealsAStillAwaitingEpoch) {
  RecoveryMeter m;
  m.on_fire(0);
  m.on_verdict(0, false);
  m.on_fire(5);             // epoch 0 still awaiting: sealed as -1
  m.on_verdict(7, true);
  const PerturbationStats stats = m.finish();
  EXPECT_EQ(stats.recovery_steps, (std::vector<StepIndex>{-1, 2}));
  EXPECT_EQ(stats.unrecovered(), 1);
}

TEST(ServiceStallsTest, WindowsArePerEpochAndHalfOpen) {
  const std::vector<StepIndex> fires{0, 10};
  // First service at-or-after each fire, strictly before the next fire
  // (or the end of the run for the last epoch).
  EXPECT_EQ(service_stalls_per_epoch(fires, {3, 9, 10, 15}, 20),
            (std::vector<StepIndex>{3, 0}));
  // A service event exactly at the next fire belongs to the next window.
  EXPECT_EQ(service_stalls_per_epoch(fires, {10}, 20),
            (std::vector<StepIndex>{-1, 0}));
  // total_steps bounds the last window half-open too.
  EXPECT_EQ(service_stalls_per_epoch(fires, {20}, 20),
            (std::vector<StepIndex>{-1, -1}));
  EXPECT_EQ(service_stalls_per_epoch(fires, {}, 20),
            (std::vector<StepIndex>{-1, -1}));
  EXPECT_TRUE(service_stalls_per_epoch({}, {1, 2}, 20).empty());
}

/// min+1 on the 5-path, corrupted to all-zeros: the hand fixture.  The
/// exact-levels init is terminal, so epoch 1 stall-fires at step 0;
/// synchronous recovery is exactly 4 steps —
///   (0,0,0,0,0) -> (0,1,1,1,1) -> (0,1,2,2,2) -> (0,1,2,3,3) -> (0,1,2,3,4)
/// — whereupon the run re-stalls and epoch 2 fires at step 4.
RunResult<I32> run_perturbed_min_plus_one(EngineKind engine,
                                          ConfigLayout layout,
                                          unsigned threads) {
  const Graph g = make_path(5);
  const MinPlusOneProtocol proto(g);
  SynchronousDaemon daemon;
  RunOptions opt;
  opt.max_steps = 64;
  opt.engine = engine;
  opt.layout = layout;
  opt.threads = threads;
  FaultPlan<I32> plan(
      FaultSpec::parse("periodic:k=5;epochs=2;period=4;start=4"), 7, 1,
      [&g](std::uint64_t) {
        return Config<I32>(static_cast<std::size_t>(g.n()), 0);
      },
      nullptr);
  ClosureCounting checker(make_min_plus_one_checker(proto));
  return run_with_engine(g, proto, daemon, proto.exact_levels(), opt, checker,
                         nullptr, &plan);
}

TEST(FaultHandFixtureTest, MinPlusOnePathRecoversInExactlyFourSteps) {
  const auto res = run_perturbed_min_plus_one(EngineKind::kReference,
                                              ConfigLayout::kAoS, 1);
  EXPECT_EQ(res.perturb.epochs_fired, 2);
  EXPECT_EQ(res.perturb.fire_steps, (std::vector<StepIndex>{0, 4}));
  EXPECT_EQ(res.perturb.recovery_steps, (std::vector<StepIndex>{4, 4}));
  EXPECT_EQ(res.perturb.unrecovered(), 0);
  EXPECT_EQ(res.steps, 8);
  EXPECT_EQ(res.moves, 20);  // 4+3+2+1 activations per recovery wave
  EXPECT_TRUE(res.terminated);
  EXPECT_TRUE(res.converged());
  EXPECT_EQ(res.convergence_steps(), 8);
  EXPECT_EQ(res.final_config, (Config<I32>{0, 1, 2, 3, 4}));
}

TEST(FaultHandFixtureTest, AllEnginesLayoutsAndThreadCountsAgree) {
  const auto ref = run_perturbed_min_plus_one(EngineKind::kReference,
                                              ConfigLayout::kAoS, 1);
  for (const EngineKind engine :
       {EngineKind::kReference, EngineKind::kIncremental, EngineKind::kVector,
        EngineKind::kParallel}) {
    for (const ConfigLayout layout :
         {ConfigLayout::kAuto, ConfigLayout::kAoS, ConfigLayout::kSoA}) {
      for (const unsigned threads : {1u, 2u, 8u}) {
        const auto res = run_perturbed_min_plus_one(engine, layout, threads);
        const std::string at = std::string(engine_name(engine)) + "/" +
                               std::string(config_layout_name(layout)) + "/" +
                               std::to_string(threads);
        EXPECT_EQ(res.perturb, ref.perturb) << at;
        EXPECT_EQ(res.steps, ref.steps) << at;
        EXPECT_EQ(res.moves, ref.moves) << at;
        EXPECT_EQ(res.rounds, ref.rounds) << at;
        EXPECT_EQ(res.first_legitimate, ref.first_legitimate) << at;
        EXPECT_EQ(res.last_illegitimate, ref.last_illegitimate) << at;
        EXPECT_EQ(res.final_config, ref.final_config) << at;
        EXPECT_EQ(res.terminated, ref.terminated) << at;
      }
    }
  }
}

}  // namespace
}  // namespace specstab
