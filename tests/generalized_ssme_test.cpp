// Tests for the generalized SSME parameter space: the paper layout as a
// special case, the minimal Gamma_1-safe layout, and executable
// counterexamples for unsafe layouts.
#include "core/generalized_ssme.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "core/adversarial_configs.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"
#include "unison/parameters.hpp"

namespace specstab {
namespace {

static_assert(ProtocolConcept<GeneralizedSsmeProtocol>,
              "generalized SSME must satisfy ProtocolConcept");

TEST(GeneralizedParamsTest, PaperLayoutMatchesSsmeParams) {
  const Graph g = make_grid(3, 4);
  const auto exact = SsmeParams::for_graph(g);
  const auto general = GeneralizedSsmeParams::paper(exact.n, exact.diam);
  EXPECT_EQ(general.alpha, exact.alpha);
  EXPECT_EQ(general.k, exact.k);
  for (VertexId id = 0; id < exact.n; ++id) {
    EXPECT_EQ(general.privileged_value(id), exact.privileged_value(id)) << id;
  }
}

TEST(GeneralizedParamsTest, PaperLayoutIsGamma1Safe) {
  for (VertexId n : {2, 3, 5, 9, 16}) {
    for (VertexId diam : {1, 2, 5, 8}) {
      if (diam >= n) continue;
      EXPECT_TRUE(gamma1_safe_layout(GeneralizedSsmeParams::paper(n, diam)))
          << "n=" << n << " diam=" << diam;
    }
  }
}

TEST(GeneralizedParamsTest, MinimalSafeLayoutIsGamma1Safe) {
  for (VertexId n : {2, 3, 5, 9, 16}) {
    for (VertexId diam : {1, 2, 5, 8}) {
      if (diam >= n) continue;
      const auto p = GeneralizedSsmeParams::minimal_safe(n, diam, 1);
      EXPECT_TRUE(gamma1_safe_layout(p)) << "n=" << n << " diam=" << diam;
      EXPECT_LT(p.k, GeneralizedSsmeParams::paper(n, diam).k)
          << "minimal layout should be strictly smaller";
    }
  }
}

TEST(GeneralizedParamsTest, ShrinkingMinimalRingByOneBreaksSafety) {
  for (VertexId n : {3, 5, 9}) {
    for (VertexId diam : {1, 2, 4}) {
      if (diam >= n) continue;
      auto p = GeneralizedSsmeParams::minimal_safe(n, diam, 1);
      p.k -= 1;  // wrap-around gap from id n-1 to id 0 collapses to diam
      EXPECT_FALSE(gamma1_safe_layout(p)) << "n=" << n << " diam=" << diam;
    }
  }
}

TEST(GeneralizedParamsTest, SpacingAtMostDiamHasNoSafeRingSize) {
  EXPECT_EQ(min_safe_ring_size(5, 3, 3), 0);
  EXPECT_EQ(min_safe_ring_size(5, 3, 2), 0);
  EXPECT_GT(min_safe_ring_size(5, 3, 4), 0);
}

TEST(GeneralizedParamsTest, MinSafeRingSizeFormula) {
  // spacing*(n-1) + diam + 1
  EXPECT_EQ(min_safe_ring_size(5, 3, 4), 4 * 4 + 3 + 1);
  EXPECT_EQ(min_safe_ring_size(2, 1, 2), 2 * 1 + 1 + 1);
}

TEST(GeneralizedProtocolTest, PaperParamsBehaveIdenticallyToSsme) {
  const Graph g = make_ring(7);
  const auto ssme = SsmeProtocol::for_graph(g);
  const GeneralizedSsmeProtocol general(
      GeneralizedSsmeParams::paper(ssme.params().n, ssme.params().diam));
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto cfg = random_config(g, ssme.clock(), seed);
    for (VertexId v = 0; v < g.n(); ++v) {
      ASSERT_EQ(general.enabled(g, cfg, v), ssme.enabled(g, cfg, v));
      if (ssme.enabled(g, cfg, v)) {
        ASSERT_EQ(general.apply(g, cfg, v), ssme.apply(g, cfg, v));
      }
      ASSERT_EQ(general.privileged(cfg, v), ssme.privileged(cfg, v));
    }
  }
}

TEST(GeneralizedProtocolTest, MinimalLayoutStabilizesUnderSynchronousDaemon) {
  const Graph g = make_grid(3, 3);
  const auto params = GeneralizedSsmeParams::minimal_safe(
      g.n(), diameter(g), static_cast<ClockValue>(g.n()));
  ASSERT_TRUE(validate_unison_parameters(g, params.alpha, params.k));
  const GeneralizedSsmeProtocol proto(params);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 10 * (params.k + params.alpha);
  opt.steps_after_convergence = 2 * params.k;
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    const auto res = run_execution(
        g, proto, d, random_config(g, proto.clock(), seed), opt, legit);
    ASSERT_TRUE(res.converged()) << seed;
    EXPECT_TRUE(proto.mutex_safe(g, res.final_config)) << seed;
  }
}

TEST(GeneralizedProtocolTest, MinimalLayoutKeepsMutexSafetyInsideGamma1) {
  // Once legitimate, at most one vertex is ever privileged: run well past
  // convergence and check every configuration of the suffix.
  const Graph g = make_path(6);
  const auto params = GeneralizedSsmeParams::minimal_safe(
      g.n(), diameter(g), static_cast<ClockValue>(g.n()));
  const GeneralizedSsmeProtocol proto(params);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 6 * params.k;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, zero_config(g), opt, nullptr);
  for (const auto& cfg : res.trace) {
    ASSERT_TRUE(proto.legitimate(g, cfg));
    EXPECT_TRUE(proto.mutex_safe(g, cfg));
  }
}

TEST(GeneralizedProtocolTest, MinimalLayoutServesEveryVertex) {
  // Liveness: on a full ring cycle under sd, every identity is privileged
  // at least once.
  const Graph g = make_ring(6);
  const auto params = GeneralizedSsmeParams::minimal_safe(
      g.n(), diameter(g), static_cast<ClockValue>(g.n()));
  const GeneralizedSsmeProtocol proto(params);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 3 * params.k;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, zero_config(g), opt, nullptr);
  std::vector<bool> served(static_cast<std::size_t>(g.n()), false);
  for (const auto& cfg : res.trace) {
    for (VertexId v = 0; v < g.n(); ++v) {
      if (proto.privileged(cfg, v)) served[static_cast<std::size_t>(v)] = true;
    }
  }
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_TRUE(served[static_cast<std::size_t>(v)]) << v;
  }
}

TEST(ConflictWitnessTest, SafeLayoutsHaveNoConflict) {
  for (const auto& g : {make_ring(8), make_path(7), make_grid(3, 3)}) {
    const auto params =
        GeneralizedSsmeParams::paper(g.n(), diameter(g));
    EXPECT_FALSE(find_gamma1_conflict(g, params).has_value());
    const auto minimal = GeneralizedSsmeParams::minimal_safe(
        g.n(), diameter(g), static_cast<ClockValue>(g.n()));
    EXPECT_FALSE(find_gamma1_conflict(g, minimal).has_value());
  }
}

TEST(ConflictWitnessTest, SpacingDiamYieldsLegitimateDoublePrivilege) {
  // Whether spacing <= diam actually fires depends on how identities are
  // embedded in the topology (the paper's spacing is safe for *every*
  // embedding).  Embed identities 0 and 1 — whose privileged values are
  // only `spacing` apart on the ring — at the two ends of a path:
  // 0 - 2 - 3 - 4 - 5 - 1.
  const Graph g(6, {{0, 2}, {2, 3}, {3, 4}, {4, 5}, {5, 1}});
  const VertexId diam = diameter(g);  // 5
  GeneralizedSsmeParams params;
  params.n = g.n();
  params.diam = diam;
  params.alpha = 2;
  params.spacing = static_cast<ClockValue>(diam);  // too small
  params.k = static_cast<ClockValue>(diam) * (g.n() - 1) + diam + 1;
  params.base = 0;
  ASSERT_FALSE(gamma1_safe_layout(params));

  const auto conflict = find_gamma1_conflict(g, params);
  ASSERT_TRUE(conflict.has_value());
  const auto [u, v] = *conflict;
  const auto cfg = gamma1_conflict_config(g, params, u, v);

  const GeneralizedSsmeProtocol proto(params);
  EXPECT_TRUE(proto.legitimate(g, cfg))
      << "counterexample must live inside Gamma_1";
  EXPECT_TRUE(proto.privileged(cfg, u));
  EXPECT_TRUE(proto.privileged(cfg, v));
  EXPECT_FALSE(proto.mutex_safe(g, cfg));
}

TEST(ConflictWitnessTest, TooSmallRingYieldsLegitimateDoublePrivilege) {
  // Keep the paper spacing but shrink the ring until the wrap-around gap
  // between the extreme identities 0 and n-1 collapses to diam; on a path
  // those two identities sit a full diameter apart, so the conflict is
  // realisable inside Gamma_1.
  const Graph g = make_path(8);  // diam 7; dist(0, 7) = 7
  const VertexId diam = diameter(g);
  auto params = GeneralizedSsmeParams::paper(g.n(), diam);
  params.k = min_safe_ring_size(g.n(), diam, params.spacing) - 1;
  params.base = 0;
  ASSERT_FALSE(gamma1_safe_layout(params));

  const auto conflict = find_gamma1_conflict(g, params);
  ASSERT_TRUE(conflict.has_value());
  const auto [u, v] = *conflict;
  const auto cfg = gamma1_conflict_config(g, params, u, v);
  const GeneralizedSsmeProtocol proto(params);
  EXPECT_TRUE(proto.legitimate(g, cfg));
  EXPECT_FALSE(proto.mutex_safe(g, cfg));
}

TEST(ConflictWitnessTest, ConfigBuilderRejectsUnrealisablePairs) {
  const Graph g = make_ring(8);
  const auto params = GeneralizedSsmeParams::paper(g.n(), diameter(g));
  // Safe layout: every pair is unrealisable inside Gamma_1.
  EXPECT_THROW(gamma1_conflict_config(g, params, 0, 4), std::invalid_argument);
}

}  // namespace
}  // namespace specstab
