// Unit tests for topology generators: size, regularity, connectivity, and
// family-specific structure.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace specstab {
namespace {

TEST(GeneratorsTest, Ring) {
  const Graph g = make_ring(7);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 7);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(GeneratorsTest, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.m(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(make_path(1).n(), 1);
}

TEST(GeneratorsTest, Star) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.degree(0), 5);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_TRUE(is_tree(g));
}

TEST(GeneratorsTest, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.m(), 15);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
  EXPECT_EQ(diameter(g), 1);
}

TEST(GeneratorsTest, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.m(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2);        // corner
  EXPECT_EQ(g.degree(5), 4);        // interior (1,1)
  EXPECT_EQ(diameter(g), 2 + 3);    // (rows-1)+(cols-1)
}

TEST(GeneratorsTest, Torus) {
  const Graph g = make_torus(3, 3);
  EXPECT_EQ(g.n(), 9);
  EXPECT_EQ(g.m(), 18);
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(GeneratorsTest, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.n(), 16);
  EXPECT_EQ(g.m(), 32);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(GeneratorsTest, BinaryTree) {
  const Graph g = make_binary_tree(7);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 1);  // leaf
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = make_random_tree(17, seed);
    EXPECT_TRUE(is_tree(g)) << "seed " << seed;
  }
  EXPECT_TRUE(is_tree(make_random_tree(2, 1)));
  EXPECT_EQ(make_random_tree(1, 1).n(), 1);
}

TEST(GeneratorsTest, RandomTreeVariesWithSeed) {
  EXPECT_NE(make_random_tree(12, 1), make_random_tree(12, 2));
}

TEST(GeneratorsTest, RandomConnected) {
  const Graph g = make_random_connected(20, 0.2, 42);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.m(), 19);  // at least the spanning tree
  const Graph dense = make_random_connected(10, 1.0, 7);
  EXPECT_EQ(dense.m(), 45);  // p = 1 gives the complete graph
}

TEST(GeneratorsTest, Wheel) {
  const Graph g = make_wheel(6);  // hub + C5
  EXPECT_EQ(g.degree(0), 5);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.m(), 10);
}

TEST(GeneratorsTest, Lollipop) {
  const Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 6 + 3);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(6), 1);  // end of the stick
  EXPECT_EQ(diameter(g), 4);  // across clique (1) + stick (3)
}

TEST(GeneratorsTest, Barbell) {
  const Graph g = make_barbell(3, 2);
  EXPECT_EQ(g.n(), 8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.m(), 3 + 3 + 3);  // two triangles + 3 path edges
  EXPECT_EQ(diameter(g), 5);
  const Graph direct = make_barbell(3, 0);
  EXPECT_TRUE(direct.is_connected());
  EXPECT_EQ(direct.m(), 7);
}

TEST(GeneratorsTest, Petersen) {
  const Graph g = make_petersen();
  EXPECT_EQ(g.n(), 10);
  EXPECT_EQ(g.m(), 15);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(diameter(g), 2);
  EXPECT_EQ(girth(g), 5);
}

TEST(GeneratorsTest, Caterpillar) {
  const Graph g = make_caterpillar(4, 2);
  EXPECT_EQ(g.n(), 12);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 3);  // spine end: 1 spine + 2 legs
  EXPECT_EQ(g.degree(1), 4);  // spine interior
}

TEST(GeneratorsTest, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 12);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter(g), 2);
}

}  // namespace
}  // namespace specstab
