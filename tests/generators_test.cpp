// Unit tests for topology generators: size, regularity, connectivity, and
// family-specific structure.
#include "graph/generators.hpp"

#include <gtest/gtest.h>

#include "graph/properties.hpp"

namespace specstab {
namespace {

TEST(GeneratorsTest, Ring) {
  const Graph g = make_ring(7);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 7);
  for (VertexId v = 0; v < 7; ++v) EXPECT_EQ(g.degree(v), 2);
  EXPECT_TRUE(g.is_connected());
  EXPECT_THROW(make_ring(2), std::invalid_argument);
}

TEST(GeneratorsTest, Path) {
  const Graph g = make_path(5);
  EXPECT_EQ(g.n(), 5);
  EXPECT_EQ(g.m(), 4);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(4), 1);
  EXPECT_EQ(g.degree(2), 2);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(make_path(1).n(), 1);
}

TEST(GeneratorsTest, Star) {
  const Graph g = make_star(6);
  EXPECT_EQ(g.degree(0), 5);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 1);
  EXPECT_TRUE(is_tree(g));
}

TEST(GeneratorsTest, Complete) {
  const Graph g = make_complete(6);
  EXPECT_EQ(g.m(), 15);
  for (VertexId v = 0; v < 6; ++v) EXPECT_EQ(g.degree(v), 5);
  EXPECT_EQ(diameter(g), 1);
}

TEST(GeneratorsTest, Grid) {
  const Graph g = make_grid(3, 4);
  EXPECT_EQ(g.n(), 12);
  EXPECT_EQ(g.m(), 3 * 3 + 2 * 4);  // rows*(cols-1) + (rows-1)*cols
  EXPECT_EQ(g.degree(0), 2);        // corner
  EXPECT_EQ(g.degree(5), 4);        // interior (1,1)
  EXPECT_EQ(diameter(g), 2 + 3);    // (rows-1)+(cols-1)
}

TEST(GeneratorsTest, Torus) {
  const Graph g = make_torus(3, 3);
  EXPECT_EQ(g.n(), 9);
  EXPECT_EQ(g.m(), 18);
  for (VertexId v = 0; v < 9; ++v) EXPECT_EQ(g.degree(v), 4);
}

TEST(GeneratorsTest, Hypercube) {
  const Graph g = make_hypercube(4);
  EXPECT_EQ(g.n(), 16);
  EXPECT_EQ(g.m(), 32);
  for (VertexId v = 0; v < 16; ++v) EXPECT_EQ(g.degree(v), 4);
  EXPECT_EQ(diameter(g), 4);
  EXPECT_TRUE(is_bipartite(g));
}

TEST(GeneratorsTest, BinaryTree) {
  const Graph g = make_binary_tree(7);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 2);
  EXPECT_EQ(g.degree(3), 1);  // leaf
}

TEST(GeneratorsTest, RandomTreeIsTree) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const Graph g = make_random_tree(17, seed);
    EXPECT_TRUE(is_tree(g)) << "seed " << seed;
  }
  EXPECT_TRUE(is_tree(make_random_tree(2, 1)));
  EXPECT_EQ(make_random_tree(1, 1).n(), 1);
}

TEST(GeneratorsTest, RandomTreeVariesWithSeed) {
  EXPECT_NE(make_random_tree(12, 1), make_random_tree(12, 2));
}

TEST(GeneratorsTest, RandomConnected) {
  const Graph g = make_random_connected(20, 0.2, 42);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.m(), 19);  // at least the spanning tree
  const Graph dense = make_random_connected(10, 1.0, 7);
  EXPECT_EQ(dense.m(), 45);  // p = 1 gives the complete graph
}

TEST(GeneratorsTest, RandomConnectedDeterministicPerSeed) {
  const Graph a = make_random_connected(30, 0.15, 99);
  const Graph b = make_random_connected(30, 0.15, 99);
  EXPECT_TRUE(a == b);
  const Graph c = make_random_connected(30, 0.15, 100);
  EXPECT_FALSE(a == c);
}

TEST(GeneratorsTest, RandomConnectedZeroPIsASpanningTree) {
  for (const std::uint64_t seed : {1u, 2u, 3u, 4u}) {
    const Graph g = make_random_connected(40, 0.0, seed);
    EXPECT_EQ(g.m(), 39);
    EXPECT_TRUE(g.is_connected());
  }
}

TEST(GeneratorsTest, RandomConnectedEdgeMarginalsMatchModel) {
  // The geometric-skip overlay replaced a full n(n-1)/2 pair
  // enumeration; the model it must preserve: a uniform random labeled
  // spanning tree (Pruefer decode of a uniform sequence) plus each
  // non-tree pair included i.i.d. Bernoulli(p).  By tree-edge symmetry
  // the marginal probability of any fixed pair {u, v} is then
  //   P(edge) = 2/n + (1 - 2/n) * p,
  // uniform across pairs.  Estimate every pair's frequency over many
  // seeds; a biased skip decode (e.g. double-counting row boundaries) or
  // a non-uniform tree would push some pair outside the band.
  constexpr VertexId kN = 10;
  constexpr double kP = 0.25;
  constexpr int kSeeds = 4000;
  std::vector<int> pair_count(kN * kN, 0);
  for (int s = 0; s < kSeeds; ++s) {
    const Graph g = make_random_connected(kN, kP, 5000u + s);
    for (const auto& [u, v] : g.edges()) {
      ++pair_count[static_cast<std::size_t>(u) * kN + v];
    }
  }
  const double expected = 2.0 / kN + (1.0 - 2.0 / kN) * kP;  // 0.4
  // ~5 sigma of the frequency estimator, across all 45 pairs.
  const double tol = 0.04;
  for (VertexId u = 0; u < kN; ++u) {
    for (VertexId v = u + 1; v < kN; ++v) {
      const double freq =
          static_cast<double>(pair_count[static_cast<std::size_t>(u) * kN +
                                         v]) /
          kSeeds;
      EXPECT_NEAR(freq, expected, tol) << "pair " << u << "," << v;
    }
  }
}

TEST(GeneratorsTest, RandomConnectedExtraEdgeCountMatchesBinomialMean) {
  // Overlay volume check: extra (non-tree) edges per graph are
  // Binomial(pairs - (n-1), p) at heart; the empirical mean over many
  // seeds must sit near the analytic mean.  This would catch a skip
  // distribution sampling roughly half or double the intended rate
  // while per-pair marginals still look plausible.
  constexpr VertexId kN = 24;
  constexpr double kP = 0.1;
  constexpr int kSeeds = 1500;
  const double pairs = kN * (kN - 1) / 2.0;
  double total_extra = 0;
  for (int s = 0; s < kSeeds; ++s) {
    const Graph g = make_random_connected(kN, kP, 90000u + s);
    total_extra += static_cast<double>(g.m()) - (kN - 1);
  }
  const double mean_extra = total_extra / kSeeds;
  const double expected = (pairs - (kN - 1)) * kP;  // 25.3
  // ~6 sigma of the mean estimator (sigma_mean ~ 0.12).
  EXPECT_NEAR(mean_extra, expected, 0.8);
}

TEST(GeneratorsTest, RandomConnectedLargeNDoesNotEnumeratePairs) {
  // 200k vertices: the pair space is 2 * 10^10 (overflows 32-bit — the
  // linear pair index must be 64-bit), and enumerating it would hang the
  // test.  The geometric skip touches only the ~O(p * pairs) sampled
  // pairs, so this completes in well under a second.
  constexpr VertexId kN = 200000;
  const Graph g = make_random_connected(kN, 2.5e-9, 17);
  EXPECT_TRUE(g.is_connected());
  EXPECT_GE(g.m(), kN - 1);
  // Expected ~50 extra edges; 0 would mean the skip never fired over a
  // 2e10 pair space, a broken decode.
  EXPECT_GT(g.m(), kN - 1);
  EXPECT_LT(g.m(), kN - 1 + 500);
}

TEST(GeneratorsTest, Wheel) {
  const Graph g = make_wheel(6);  // hub + C5
  EXPECT_EQ(g.degree(0), 5);
  for (VertexId v = 1; v < 6; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(g.m(), 10);
}

TEST(GeneratorsTest, Lollipop) {
  const Graph g = make_lollipop(4, 3);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 6 + 3);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.degree(6), 1);  // end of the stick
  EXPECT_EQ(diameter(g), 4);  // across clique (1) + stick (3)
}

TEST(GeneratorsTest, Barbell) {
  const Graph g = make_barbell(3, 2);
  EXPECT_EQ(g.n(), 8);
  EXPECT_TRUE(g.is_connected());
  EXPECT_EQ(g.m(), 3 + 3 + 3);  // two triangles + 3 path edges
  EXPECT_EQ(diameter(g), 5);
  const Graph direct = make_barbell(3, 0);
  EXPECT_TRUE(direct.is_connected());
  EXPECT_EQ(direct.m(), 7);
}

TEST(GeneratorsTest, Petersen) {
  const Graph g = make_petersen();
  EXPECT_EQ(g.n(), 10);
  EXPECT_EQ(g.m(), 15);
  for (VertexId v = 0; v < 10; ++v) EXPECT_EQ(g.degree(v), 3);
  EXPECT_EQ(diameter(g), 2);
  EXPECT_EQ(girth(g), 5);
}

TEST(GeneratorsTest, Caterpillar) {
  const Graph g = make_caterpillar(4, 2);
  EXPECT_EQ(g.n(), 12);
  EXPECT_TRUE(is_tree(g));
  EXPECT_EQ(g.degree(0), 3);  // spine end: 1 spine + 2 legs
  EXPECT_EQ(g.degree(1), 4);  // spine interior
}

TEST(GeneratorsTest, CompleteBipartite) {
  const Graph g = make_complete_bipartite(3, 4);
  EXPECT_EQ(g.n(), 7);
  EXPECT_EQ(g.m(), 12);
  EXPECT_TRUE(is_bipartite(g));
  EXPECT_EQ(diameter(g), 2);
}

}  // namespace
}  // namespace specstab
