// Tests for graph serialization and matrix utilities.
#include "graph/io.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace specstab {
namespace {

TEST(GraphIoTest, RoundTrip) {
  for (const Graph& g : {make_ring(7), make_grid(3, 4), make_petersen(),
                         Graph(1), Graph(0), make_star(5)}) {
    EXPECT_EQ(from_edge_list(to_edge_list(g)), g);
  }
}

TEST(GraphIoTest, FormatShape) {
  const std::string text = to_edge_list(make_path(3));
  EXPECT_EQ(text, "n 3\n0 1\n1 2\n");
}

TEST(GraphIoTest, CommentsAndBlanksTolerated) {
  const Graph g = from_edge_list(
      "# a triangle\n"
      "n 3\n"
      "\n"
      "0 1  # first edge\n"
      "1 2\n"
      "0 2\n");
  EXPECT_EQ(g, make_ring(3));
}

TEST(GraphIoTest, MalformedInputs) {
  EXPECT_THROW((void)from_edge_list(""), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("0 1\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("n 3\nn 4\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("n -2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("n 3\n0\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("n 3\n0 1 2\n"), std::invalid_argument);
  EXPECT_THROW((void)from_edge_list("n 3\n0 5\n"), std::out_of_range);
  EXPECT_THROW((void)from_edge_list("n 3\n0 1\n0 1\n"), std::invalid_argument);
}

TEST(GraphIoTest, AdjacencyMatrix) {
  const auto m = adjacency_matrix(make_path(3));
  EXPECT_EQ(m[0], (std::vector<int>{0, 1, 0}));
  EXPECT_EQ(m[1], (std::vector<int>{1, 0, 1}));
  EXPECT_EQ(m[2], (std::vector<int>{0, 1, 0}));
}

TEST(GraphIoTest, DegreeSequence) {
  EXPECT_EQ(degree_sequence(make_star(5)), (std::vector<VertexId>{4, 1, 1, 1, 1}));
  EXPECT_EQ(degree_sequence(make_ring(4)), (std::vector<VertexId>{2, 2, 2, 2}));
}

}  // namespace
}  // namespace specstab
