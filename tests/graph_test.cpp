// Unit tests for the Graph data structure.
#include "graph/graph.hpp"

#include <gtest/gtest.h>

#include <stdexcept>

namespace specstab {
namespace {

TEST(GraphTest, EmptyGraph) {
  Graph g;
  EXPECT_EQ(g.n(), 0);
  EXPECT_EQ(g.m(), 0);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, SingleVertex) {
  Graph g(1);
  EXPECT_EQ(g.n(), 1);
  EXPECT_EQ(g.m(), 0);
  EXPECT_TRUE(g.is_connected());
  EXPECT_TRUE(g.neighbors(0).empty());
}

TEST(GraphTest, NegativeVertexCountThrows) {
  EXPECT_THROW(Graph(-1), std::invalid_argument);
}

TEST(GraphTest, AddEdgeBasics) {
  Graph g(3);
  g.add_edge(0, 1);
  EXPECT_TRUE(g.has_edge(0, 1));
  EXPECT_TRUE(g.has_edge(1, 0));
  EXPECT_FALSE(g.has_edge(0, 2));
  EXPECT_EQ(g.m(), 1);
  EXPECT_EQ(g.degree(0), 1);
  EXPECT_EQ(g.degree(2), 0);
}

TEST(GraphTest, SelfLoopThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(1, 1), std::invalid_argument);
}

TEST(GraphTest, DuplicateEdgeThrows) {
  Graph g(2);
  g.add_edge(0, 1);
  EXPECT_THROW(g.add_edge(0, 1), std::invalid_argument);
  EXPECT_THROW(g.add_edge(1, 0), std::invalid_argument);
}

TEST(GraphTest, OutOfRangeThrows) {
  Graph g(2);
  EXPECT_THROW(g.add_edge(0, 2), std::out_of_range);
  EXPECT_THROW(g.add_edge(-1, 0), std::out_of_range);
  EXPECT_THROW((void)g.neighbors(5), std::out_of_range);
}

TEST(GraphTest, EdgeListConstructor) {
  Graph g(4, {{0, 1}, {2, 1}, {3, 0}});
  EXPECT_EQ(g.m(), 3);
  EXPECT_TRUE(g.has_edge(1, 2));
  const auto edges = g.edges();
  ASSERT_EQ(edges.size(), 3u);
  // Sorted with u < v.
  EXPECT_EQ(edges[0], (std::pair<VertexId, VertexId>{0, 1}));
  EXPECT_EQ(edges[1], (std::pair<VertexId, VertexId>{0, 3}));
  EXPECT_EQ(edges[2], (std::pair<VertexId, VertexId>{1, 2}));
}

TEST(GraphTest, NeighborsSorted) {
  Graph g(5);
  g.add_edge(2, 4);
  g.add_edge(2, 0);
  g.add_edge(2, 3);
  g.add_edge(2, 1);
  const auto& nb = g.neighbors(2);
  EXPECT_EQ(nb, (std::vector<VertexId>{0, 1, 3, 4}));
}

TEST(GraphTest, Connectivity) {
  Graph g(4);
  g.add_edge(0, 1);
  g.add_edge(2, 3);
  EXPECT_FALSE(g.is_connected());
  g.add_edge(1, 2);
  EXPECT_TRUE(g.is_connected());
}

TEST(GraphTest, Equality) {
  Graph a(3, {{0, 1}, {1, 2}});
  Graph b(3, {{1, 2}, {0, 1}});
  Graph c(3, {{0, 1}});
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
}

TEST(GraphTest, ToDotContainsAllEdges) {
  Graph g(3, {{0, 1}, {1, 2}});
  const std::string dot = g.to_dot();
  EXPECT_NE(dot.find("0 -- 1"), std::string::npos);
  EXPECT_NE(dot.find("1 -- 2"), std::string::npos);
  EXPECT_EQ(dot.find("0 -- 2"), std::string::npos);
}

}  // namespace
}  // namespace specstab
