// Tests for the power-law growth fitter.
#include "core/growth.hpp"

#include <gtest/gtest.h>

#include <cmath>

namespace specstab {
namespace {

TEST(GrowthFitTest, ExactQuadratic) {
  std::vector<double> x, y;
  for (double v : {4.0, 8.0, 16.0, 32.0, 64.0}) {
    x.push_back(v);
    y.push_back(3.0 * v * v);
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 1e-9);
  EXPECT_NEAR(fit.constant, 3.0, 1e-9);
  EXPECT_NEAR(fit.r_squared, 1.0, 1e-9);
  EXPECT_EQ(fit.points, 5u);
}

TEST(GrowthFitTest, ExactLinear) {
  const auto fit = fit_power_law(std::vector<std::int64_t>{2, 4, 8, 16},
                                 std::vector<std::int64_t>{10, 20, 40, 80});
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
  EXPECT_NEAR(fit.constant, 5.0, 1e-9);
}

TEST(GrowthFitTest, ConstantCost) {
  const auto fit = fit_power_law(std::vector<std::int64_t>{2, 4, 8, 16},
                                 std::vector<std::int64_t>{7, 7, 7, 7});
  EXPECT_NEAR(fit.exponent, 0.0, 1e-9);
  EXPECT_NEAR(fit.constant, 7.0, 1e-9);
}

TEST(GrowthFitTest, NoisyQuadraticStillNearTwo) {
  std::vector<double> x, y;
  const double noise[] = {1.1, 0.92, 1.05, 0.97, 1.02, 0.95};
  int i = 0;
  for (double v : {4.0, 8.0, 16.0, 32.0, 64.0, 128.0}) {
    x.push_back(v);
    y.push_back(v * v * noise[i++]);
  }
  const auto fit = fit_power_law(x, y);
  EXPECT_NEAR(fit.exponent, 2.0, 0.1);
  EXPECT_GT(fit.r_squared, 0.99);
}

TEST(GrowthFitTest, NonPositiveSamplesIgnored) {
  const auto fit = fit_power_law(std::vector<double>{0.0, 2.0, 4.0, -3.0},
                                 std::vector<double>{5.0, 4.0, 8.0, 1.0});
  EXPECT_EQ(fit.points, 2u);  // only (2,4) and (4,8)
  EXPECT_NEAR(fit.exponent, 1.0, 1e-9);
}

TEST(GrowthFitTest, Validation) {
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1.0},
                                   std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_power_law(std::vector<double>{1.0, 2.0},
                                   std::vector<double>{1.0}),
               std::invalid_argument);
  EXPECT_THROW((void)fit_power_law(std::vector<double>{2.0, 2.0},
                                   std::vector<double>{1.0, 5.0}),
               std::invalid_argument);  // degenerate x
}

}  // namespace
}  // namespace specstab
