// Cross-module integration tests: the full pipeline
// graph -> parameters -> protocol -> daemon -> engine -> spec checkers,
// mirroring how the examples and benches consume the library.
#include <gtest/gtest.h>

#include <functional>

#include "core/adversarial_configs.hpp"
#include "core/mutex_spec.hpp"
#include "core/speculation.hpp"
#include "core/ssme.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "unison/unison_spec.hpp"

namespace specstab {
namespace {

TEST(IntegrationTest, FullSsmePipelineOnRandomGraph) {
  const Graph g = make_random_connected(9, 0.3, 2024);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);

  // 1. The parameters respect the topology.
  EXPECT_EQ(proto.params().diam, diameter(g));
  EXPECT_GT(proto.params().k, proto.params().n);

  // 2. Run synchronously from a corrupted configuration with both spec
  //    monitors attached.
  SynchronousDaemon d;
  MutexSpecMonitor monitor(g, proto);
  RunOptions opt;
  opt.max_steps = 6 * proto.params().k;
  opt.record_trace = true;
  const StepObserver<ClockValue> obs =
      [&monitor](StepIndex i, const Config<ClockValue>& cfg,
                 const std::vector<VertexId>& act) {
        monitor.on_action(i, cfg, act);
      };
  const auto res = run_execution(
      g, proto, d, random_config(g, proto.clock(), 31), opt,
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      },
      obs);
  monitor.finish(res.steps, res.final_config);

  // 3. Stabilized to Gamma_1 and stayed there.
  ASSERT_TRUE(res.converged());

  // 4. spec_ME: safety violations only before ceil(diam/2); liveness after.
  EXPECT_LE(monitor.report().stabilization_steps(),
            ssme_sync_bound(proto.params().diam));
  EXPECT_TRUE(monitor.report().liveness_at_least(1));

  // 5. spec_AU over the same trace.
  const auto au = check_unison_spec(g, proto.unison(), res.trace.materialize());
  EXPECT_EQ(au.stabilization_steps(), res.convergence_steps());
  EXPECT_GT(au.min_increments(), 0);
}

TEST(IntegrationTest, SpeculationStudyMiniature) {
  // A miniature of the XOVER bench: the synchronous daemon beats every
  // asynchronous portfolio member on steps-to-Gamma_1.
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto inits = random_configs(g, proto.clock(), 2, 99);
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  RunOptions opt;
  opt.max_steps = 500000;
  opt.steps_after_convergence = 0;

  auto portfolio = AdversaryPortfolio::standard(5);
  const auto pm = measure_portfolio(g, proto, portfolio, inits, legit, opt);
  ASSERT_TRUE(pm.all_converged);
  // rows[0] is the synchronous daemon.
  EXPECT_EQ(pm.rows[0].daemon_name, "synchronous");
  for (std::size_t i = 1; i < pm.rows.size(); ++i) {
    EXPECT_LE(pm.rows[0].worst_steps, pm.rows[i].worst_steps)
        << pm.rows[i].daemon_name;
  }
  // And everything is inside the Theorem 3 bound.
  EXPECT_LE(pm.worst_steps,
            ssme_ud_bound(proto.params().n, proto.params().diam));
}

TEST(IntegrationTest, WitnessThenRecoveryEndToEnd) {
  // Lower-bound witness followed by full recovery and fair service: the
  // complete paper story on one instance.
  const Graph g = make_path(10);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto [u, v] = diameter_pair(g);
  const auto init = two_gradient_config(g, proto, u, v);
  const StepIndex t = two_gradient_violation_step(g, u, v);

  SynchronousDaemon d;
  MutexSpecMonitor monitor(g, proto);
  RunOptions opt;
  opt.max_steps = 8 * proto.params().k;
  const StepObserver<ClockValue> obs =
      [&monitor](StepIndex i, const Config<ClockValue>& cfg,
                 const std::vector<VertexId>& act) {
        monitor.on_action(i, cfg, act);
      };
  const auto res =
      run_execution(g, proto, d, init, opt, nullptr, obs);
  monitor.finish(res.steps, res.final_config);

  // The violation happened exactly at gamma_t...
  EXPECT_EQ(monitor.report().last_safety_violation, t);
  // ...which makes the measured stabilization time exactly the Theorem 2
  // bound (tightness), ...
  EXPECT_EQ(monitor.report().stabilization_steps(),
            mutex_sync_lower_bound(proto.params().diam));
  // ...and afterwards every vertex was served repeatedly.
  EXPECT_TRUE(monitor.report().liveness_at_least(2));
}

TEST(IntegrationTest, DiameterPairDrivesWitnessOnEveryFamily) {
  for (const Graph& g :
       {make_ring(8), make_grid(3, 4), make_binary_tree(15),
        make_caterpillar(5, 1), make_random_connected(10, 0.25, 8)}) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    const auto init = two_gradient_config(g, proto);
    SynchronousDaemon d;
    MutexSpecMonitor monitor(g, proto);
    RunOptions opt;
    opt.max_steps = 4 * proto.params().k;
    const StepObserver<ClockValue> obs =
        [&monitor](StepIndex i, const Config<ClockValue>& cfg,
                   const std::vector<VertexId>& act) {
          monitor.on_action(i, cfg, act);
        };
    const auto res = run_execution(g, proto, d, init, opt, nullptr, obs);
    monitor.finish(res.steps, res.final_config);
    // Never beyond the Theorem 2 bound; liveness restored.
    EXPECT_LE(monitor.report().stabilization_steps(),
              ssme_sync_bound(proto.params().diam))
        << "n=" << g.n();
    EXPECT_TRUE(monitor.report().liveness_at_least(1)) << "n=" << g.n();
  }
}

}  // namespace
}  // namespace specstab
