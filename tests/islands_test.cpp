// Tests for the island machinery (Definitions 5-6) and empirical checks
// of the erosion lemmas (Lemmas 1-4) on synchronous executions.
#include "core/islands.hpp"

#include <gtest/gtest.h>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

struct Fixture {
  Graph g;
  SsmeProtocol proto;
  explicit Fixture(Graph graph)
      : g(std::move(graph)), proto(SsmeProtocol::for_graph(g)) {}
  [[nodiscard]] const UnisonProtocol& unison() const {
    return proto.unison();
  }
};

TEST(IslandTest, LegitimateConfigurationHasNoIslands) {
  Fixture f(make_ring(8));
  EXPECT_TRUE(find_islands(f.g, f.unison(), zero_config(f.g)).empty());
}

TEST(IslandTest, AllTailConfigurationHasNoIslands) {
  Fixture f(make_path(6));
  Config<ClockValue> cfg(6, -3);  // every register in the init tail
  EXPECT_TRUE(find_islands(f.g, f.unison(), cfg).empty());
}

TEST(IslandTest, SingleStabVertexIsItsOwnIsland) {
  Fixture f(make_path(5));
  Config<ClockValue> cfg(5, -2);
  cfg[2] = 7;  // lone stab value
  const auto islands = find_islands(f.g, f.unison(), cfg);
  ASSERT_EQ(islands.size(), 1u);
  EXPECT_EQ(islands[0].vertices, (std::vector<VertexId>{2}));
  EXPECT_FALSE(islands[0].zero);
  EXPECT_EQ(islands[0].border, (std::vector<VertexId>{2}));
  EXPECT_EQ(islands[0].depth, 0);
}

TEST(IslandTest, ZeroMembershipDetected) {
  Fixture f(make_path(5));
  Config<ClockValue> cfg = {0, 1, -2, 5, 6};
  const auto islands = find_islands(f.g, f.unison(), cfg);
  ASSERT_EQ(islands.size(), 2u);
  const Island* left = island_of(islands, 0);
  const Island* right = island_of(islands, 3);
  ASSERT_NE(left, nullptr);
  ASSERT_NE(right, nullptr);
  EXPECT_TRUE(left->zero);
  EXPECT_FALSE(right->zero);
  EXPECT_EQ(island_of(islands, 2), nullptr);  // tail value: no island
}

TEST(IslandTest, DriftTwoSplitsIslands) {
  Fixture f(make_path(4));
  Config<ClockValue> cfg = {10, 11, 13, 14};  // drift 2 across the middle
  const auto islands = find_islands(f.g, f.unison(), cfg);
  ASSERT_EQ(islands.size(), 2u);
  EXPECT_EQ(islands[0].vertices, (std::vector<VertexId>{0, 1}));
  EXPECT_EQ(islands[1].vertices, (std::vector<VertexId>{2, 3}));
}

TEST(IslandTest, DepthCountsDistanceToBorder) {
  // Path of 7, all stab and mutually correct except the last vertex in
  // the tail: one island of 6 vertices, border = {5} (vertex adjacent to
  // the non-member), depth = 5 (vertex 0 is five hops from the border).
  Fixture f(make_path(7));
  Config<ClockValue> cfg = {20, 20, 20, 20, 20, 20, -4};
  const auto islands = find_islands(f.g, f.unison(), cfg);
  ASSERT_EQ(islands.size(), 1u);
  EXPECT_EQ(islands[0].vertices.size(), 6u);
  EXPECT_EQ(islands[0].border, (std::vector<VertexId>{5}));
  EXPECT_EQ(islands[0].depth, 5);
}

TEST(IslandTest, InteriorOfDeepIslandSurvivesOneStep) {
  // The erosion is exactly one layer per synchronous step on a path:
  // border resets, interior ticks on.
  Fixture f(make_path(8));
  Config<ClockValue> cfg = {30, 30, 30, 30, 30, 30, 30, -5};
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 1;
  opt.record_trace = true;
  const auto res = run_execution(f.g, f.proto, d, cfg, opt);
  const auto before = find_islands(f.g, f.unison(), res.trace.front());
  const auto after = find_islands(f.g, f.unison(), res.trace.back());
  ASSERT_EQ(before.size(), 1u);
  ASSERT_EQ(after.size(), 1u);
  EXPECT_EQ(after[0].depth, before[0].depth - 1);
}

// Lemma 3 (backward erosion): within the first diam steps of a
// synchronous execution, a vertex in a non-zero-island of depth k at
// gamma_i was, at gamma_{i-1}, in a non-zero-island of depth >= k+1 or
// in a zero-island.
class ErosionSweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ErosionSweep, Lemma3BackwardErosion) {
  const std::uint64_t seed = GetParam();
  const Graph g = seed % 2 == 0 ? make_path(10)
                                : make_random_connected(12, 0.2, seed);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = diameter(g);
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d,
                                 random_config(g, proto.clock(), seed), opt);
  for (std::size_t i = 1; i < res.trace.size(); ++i) {
    const auto now = find_islands(g, proto.unison(), res.trace[i]);
    const auto before = find_islands(g, proto.unison(), res.trace[i - 1]);
    for (const auto& island : now) {
      if (island.zero) continue;
      for (const VertexId v : island.vertices) {
        const Island* prev = island_of(before, v);
        // Lemma 3: v was on an island a step ago, and on a non-zero one
        // it sat strictly deeper.
        ASSERT_NE(prev, nullptr) << "step " << i << " vertex " << v;
        if (!prev->zero) {
          EXPECT_GE(prev->depth, island.depth + 1)
              << "step " << i << " vertex " << v;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ErosionSweep,
                         ::testing::Values(0, 1, 2, 3, 4, 5, 6, 7));

// Lemma 2 consequence: a privileged vertex in the first diam steps was
// never on a zero-island so far.
TEST(IslandLemmaTest, PrivilegedVerticesAvoidZeroIslands) {
  const Graph g = make_path(9);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = diameter(g) - 1;
  opt.record_trace = true;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto res = run_execution(
        g, proto, d, random_config(g, proto.clock(), seed), opt);
    // For each configuration gamma_i and privileged vertex v, check no
    // prefix configuration put v on a zero-island.
    for (std::size_t i = 0; i < res.trace.size(); ++i) {
      for (VertexId v = 0; v < g.n(); ++v) {
        if (!proto.privileged(res.trace[i], v)) continue;
        for (std::size_t j = 0; j <= i; ++j) {
          const auto islands = find_islands(g, proto.unison(), res.trace[j]);
          const Island* home = island_of(islands, v);
          if (home != nullptr) {
            EXPECT_FALSE(home->zero)
                << "seed " << seed << " step " << j << " vertex " << v;
          }
        }
      }
    }
  }
}

// Lemma 4: if gamma_0 is not legitimate, after diam steps every register
// is in the init tail or in the window
// {(2n-2)(diam+1)+3, .., 0, .., 2 diam - 1} around zero.
TEST(IslandLemmaTest, Lemma4RegisterWindowAfterDiamSteps) {
  const Graph g = make_path(8);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto& clock = proto.clock();
  const auto diam = static_cast<std::int64_t>(proto.params().diam);
  const auto n = static_cast<std::int64_t>(proto.params().n);
  const std::int64_t window_lo = (2 * n - 2) * (diam + 1) + 3;  // mod K
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = diam;
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    const auto init = random_config(g, proto.clock(), seed);
    if (proto.legitimate(g, init)) continue;  // lemma assumes gamma_0 not in Gamma_1
    const auto res = run_execution(g, proto, d, init, opt);
    for (VertexId v = 0; v < g.n(); ++v) {
      const ClockValue r = res.final_config[static_cast<std::size_t>(v)];
      const bool in_tail = clock.in_init(r);
      // Window as ring positions: from window_lo up to K-1, then 0 up to
      // 2 diam - 1.
      const bool in_window =
          clock.in_stab(r) &&
          (r >= static_cast<ClockValue>(window_lo) || r < 2 * diam);
      EXPECT_TRUE(in_tail || in_window)
          << "seed " << seed << " vertex " << v << " register " << r;
    }
  }
}

}  // namespace
}  // namespace specstab
