// Layout-agreement differential suite.
//
// The ConfigStore contract: results are *byte-identical* across storage
// layouts — a run differs in memory traffic only, never in observable
// behaviour.  This harness holds every registered protocol to it, through
// the type-erased session API, across the full
// protocol x init x daemon x engine x layout grid: printed final states,
// FNV digests, every meter, and the complete delta trace must match the
// reference-engine AoS baseline combo for combo.
//
// The typed half drives the store's remaining code paths directly:
//   - a struct state with a *cold payload* (covers_state == false), so
//     the residual full-struct array plus hot-column mirror is exercised
//     (no built-in protocol needs it);
//   - LeaderState's covers-all split (column gather on whole-state
//     reads);
//   - ConfigStore unit semantics (set/get round trips, dense_apply vs a
//     naive apply, take()/materialize()).
#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "sim/any_protocol.hpp"
#include "sim/config_store.hpp"
#include "sim/daemon.hpp"
#include "sim/incremental_engine.hpp"
#include "sim/protocol_registry.hpp"

namespace specstab {

/// Test-only state with one hot guard field and a cold payload the guards
/// never read — the shape the residual array exists for.
struct HotColdState {
  std::int32_t hot = 0;
  std::int64_t payload = 0;

  friend bool operator==(const HotColdState&, const HotColdState&) = default;
};

template <>
struct SoaFields<HotColdState> {
  static constexpr auto members = std::make_tuple(&HotColdState::hot);
  static constexpr bool covers_state = false;  // payload stays residual
};

namespace {

/// Max-propagation over the hot field; every move also churns the cold
/// payload, so a layout bug that loses residual writes breaks equality.
class HotColdProtocol {
 public:
  using State = HotColdState;

  [[nodiscard]] bool enabled(const Graph& g, const ConfigView<State>& cfg,
                             VertexId v) const {
    const std::int32_t mine = cfg.field<0>(static_cast<std::size_t>(v));
    for (VertexId u : g.neighbors(v)) {
      if (cfg.field<0>(static_cast<std::size_t>(u)) > mine) return true;
    }
    return false;
  }
  [[nodiscard]] State apply(const Graph& g, const ConfigView<State>& cfg,
                            VertexId v) const {
    State s = cfg.get(static_cast<std::size_t>(v));
    for (VertexId u : g.neighbors(v)) {
      const std::int32_t hu = cfg.field<0>(static_cast<std::size_t>(u));
      if (hu > s.hot) s.hot = hu;
    }
    s.payload = s.payload * 31 + v + 1;
    return s;
  }
  [[nodiscard]] std::string_view rule_name(const Graph&,
                                           const ConfigView<State>&,
                                           VertexId) const {
    return "MAX";
  }
};

Config<HotColdState> random_hotcold(const Graph& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Config<HotColdState> cfg(static_cast<std::size_t>(g.n()));
  for (auto& s : cfg) {
    s.hot = static_cast<std::int32_t>(rng() % 17);
    s.payload = static_cast<std::int64_t>(rng() % 1000);
  }
  return cfg;
}

template <class State>
void expect_same_run(const RunResult<State>& a, const RunResult<State>& b,
                     const std::string& label) {
  EXPECT_EQ(a.steps, b.steps) << label;
  EXPECT_EQ(a.moves, b.moves) << label;
  EXPECT_EQ(a.rounds, b.rounds) << label;
  EXPECT_EQ(a.terminated, b.terminated) << label;
  EXPECT_EQ(a.hit_step_cap, b.hit_step_cap) << label;
  EXPECT_EQ(a.first_legitimate, b.first_legitimate) << label;
  EXPECT_EQ(a.last_illegitimate, b.last_illegitimate) << label;
  EXPECT_EQ(a.moves_to_convergence, b.moves_to_convergence) << label;
  EXPECT_EQ(a.rounds_to_convergence, b.rounds_to_convergence) << label;
  EXPECT_TRUE(a.final_config == b.final_config) << label;
  EXPECT_TRUE(a.trace == b.trace) << label;
}

// --- Typed differential: residual split, engines x layouts ------------

TEST(LayoutAgreement, HotColdResidualSplitAgreesAcrossEnginesAndLayouts) {
  const HotColdProtocol proto;
  for (const Graph& g : {make_ring(12), make_torus(3, 4),
                         make_random_connected(16, 0.3, 5)}) {
    for (const std::string daemon_name :
         {std::string("synchronous"), std::string("central-rr"),
          std::string("bernoulli-0.5")}) {
      for (std::uint64_t seed = 0; seed < 5; ++seed) {
        std::vector<RunResult<HotColdState>> runs;
        std::vector<std::string> labels;
        for (const EngineKind engine :
             {EngineKind::kReference, EngineKind::kIncremental,
              EngineKind::kVector, EngineKind::kParallel}) {
          for (const ConfigLayout layout :
               {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
            RunOptions opt;
            opt.engine = engine;
            opt.threads = engine == EngineKind::kParallel ? 3 : 1;
            opt.layout = layout;
            opt.max_steps = 4000;
            opt.record_trace = true;
            const auto daemon = make_daemon(daemon_name, seed);
            AlwaysLegitimate checker;
            runs.push_back(run_with_engine(g, proto, *daemon,
                                           random_hotcold(g, seed), opt,
                                           checker));
            labels.push_back(std::string(engine_name(engine)) + "/" +
                             std::string(config_layout_name(layout)));
            EXPECT_TRUE(runs.back().terminated) << labels.back();
          }
        }
        for (std::size_t i = 1; i < runs.size(); ++i) {
          expect_same_run(runs[0], runs[i],
                          daemon_name + " seed " + std::to_string(seed) +
                              ": " + labels[0] + " vs " + labels[i]);
        }
      }
    }
  }
}

TEST(LayoutAgreement, FusedParallelThreadGridAgreesAcrossLayouts) {
  // The fused dense path fills column segments per shard
  // (dense_fill_range), including the residual full-struct array the
  // HotCold split leaves behind — a lost residual write or a torn column
  // segment shows up as a final-config or trace mismatch.  Graph sizes
  // straddle the 64-vertex word boundary (97, 130) so shards get unequal
  // word counts at every thread value.
  const HotColdProtocol proto;
  for (const Graph& g :
       {make_ring(130), make_random_connected(97, 0.05, 13)}) {
    for (const std::string daemon_name :
         {std::string("synchronous"), std::string("bernoulli-0.5")}) {
      for (std::uint64_t seed = 0; seed < 4; ++seed) {
        RunOptions opt;
        opt.max_steps = 4000;
        opt.record_trace = true;
        opt.engine = EngineKind::kIncremental;
        opt.threads = 1;
        opt.layout = ConfigLayout::kAoS;
        const auto init = random_hotcold(g, seed);
        const auto base_daemon = make_daemon(daemon_name, seed);
        AlwaysLegitimate base_checker;
        const auto base = run_with_engine(g, proto, *base_daemon, init, opt,
                                          base_checker);
        EXPECT_TRUE(base.terminated);

        opt.engine = EngineKind::kParallel;
        for (const unsigned threads : {1u, 2u, 8u}) {
          for (const ConfigLayout layout :
               {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
            opt.threads = threads;
            opt.layout = layout;
            const auto daemon = make_daemon(daemon_name, seed);
            AlwaysLegitimate checker;
            const auto got =
                run_with_engine(g, proto, *daemon, init, opt, checker);
            expect_same_run(
                base, got,
                "n=" + std::to_string(g.n()) + " " + daemon_name + " seed " +
                    std::to_string(seed) + " parallel-t" +
                    std::to_string(threads) + "/" +
                    std::string(config_layout_name(layout)));
          }
        }
      }
    }
  }
}

// --- Typed differential: covers-all split (LeaderState) ---------------

TEST(LayoutAgreement, LeaderColumnsAgreeWithAoSIncludingTraces) {
  const Graph g = make_random_connected(24, 0.2, 9);
  const LeaderElectionProtocol proto(g);
  for (const std::string daemon_name :
       {std::string("synchronous"), std::string("bernoulli-0.5")}) {
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      std::vector<RunResult<LeaderState>> runs;
      for (const EngineKind engine :
           {EngineKind::kReference, EngineKind::kIncremental,
            EngineKind::kVector, EngineKind::kParallel}) {
        for (const ConfigLayout layout :
             {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
          RunOptions opt;
          opt.engine = engine;
          opt.threads = engine == EngineKind::kParallel ? 3 : 1;
          opt.layout = layout;
          opt.max_steps = 4000;
          opt.record_trace = true;
          const auto daemon = make_daemon(daemon_name, seed);
          auto checker = make_leader_election_checker(proto, g);
          runs.push_back(run_with_engine(g, proto, *daemon,
                                         random_leader_config(g, seed), opt,
                                         checker));
        }
      }
      for (std::size_t i = 1; i < runs.size(); ++i) {
        expect_same_run(runs[0], runs[i],
                        daemon_name + " seed " + std::to_string(seed) +
                            " combo " + std::to_string(i));
      }
    }
  }
}

// --- Registry-driven: every protocol x init x daemon x engine x layout -

TEST(LayoutAgreement, RegistrySessionsAgreeByteForByteAcrossLayouts) {
  const auto& registry = ProtocolRegistry::instance();
  const Graph ring = make_ring(9);
  const Graph torus = make_torus(3, 3);
  for (const auto& entry : registry.entries()) {
    for (const Graph* g :
         entry.info.ring_only ? std::vector<const Graph*>{&ring}
                              : std::vector<const Graph*>{&ring, &torus}) {
      for (const auto& init : entry.info.inits) {
        for (const std::string daemon_name :
             {std::string("synchronous"), std::string("central-rr"),
              std::string("bernoulli-0.5")}) {
          SessionSpec spec;
          spec.daemon = daemon_name;
          spec.init = init;
          spec.seed = 7;
          spec.record_trace = true;

          std::vector<SessionResult> results;
          std::vector<std::string> labels;
          for (const EngineKind engine :
               {EngineKind::kReference, EngineKind::kIncremental,
                EngineKind::kVector, EngineKind::kParallel}) {
            for (const ConfigLayout layout :
                 {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
              spec.engine = engine;
              spec.threads = engine == EngineKind::kParallel ? 3 : 1;
              spec.layout = layout;
              results.push_back(entry.run(*g, spec));
              labels.push_back(std::string(engine_name(engine)) + "/" +
                               std::string(config_layout_name(layout)));
            }
          }
          const auto& base = results.front();
          for (std::size_t i = 1; i < results.size(); ++i) {
            const std::string label = entry.info.name + " init=" + init +
                                      " daemon=" + daemon_name + " " +
                                      labels[0] + " vs " + labels[i];
            const auto& r = results[i];
            ASSERT_EQ(base.final_digest, r.final_digest) << label;
            ASSERT_EQ(base.final_state, r.final_state) << label;
            EXPECT_EQ(base.steps, r.steps) << label;
            EXPECT_EQ(base.moves, r.moves) << label;
            EXPECT_EQ(base.rounds, r.rounds) << label;
            EXPECT_EQ(base.converged, r.converged) << label;
            EXPECT_EQ(base.convergence_steps, r.convergence_steps) << label;
            EXPECT_EQ(base.closure_violations, r.closure_violations) << label;
            ASSERT_EQ(base.trace_length, r.trace_length) << label;
            // Full delta-trace agreement through the erased boundary.
            EXPECT_EQ(base.trace_materialize(), r.trace_materialize())
                << label;
          }
        }
      }
    }
  }
}

// --- ConfigStore unit semantics ---------------------------------------

TEST(ConfigStore, LayoutResolutionAndNames) {
  EXPECT_EQ(ConfigStore<std::int32_t>::resolve(ConfigLayout::kAuto),
            ConfigLayout::kSoA);
  EXPECT_EQ(ConfigStore<std::int32_t>::resolve(ConfigLayout::kAoS),
            ConfigLayout::kAoS);
  EXPECT_EQ(ConfigStore<LeaderState>::resolve(ConfigLayout::kAuto),
            ConfigLayout::kSoA);
  EXPECT_EQ(ConfigStore<HotColdState>::resolve(ConfigLayout::kAuto),
            ConfigLayout::kSoA);
  // No split declared: SoA requests fall back to AoS.
  using Pair = std::pair<std::int32_t, std::int32_t>;
  EXPECT_EQ(ConfigStore<Pair>::resolve(ConfigLayout::kSoA),
            ConfigLayout::kAoS);

  EXPECT_EQ(config_layout_name(ConfigLayout::kSoA), "soa");
  EXPECT_EQ(config_layout_by_name("aos"), ConfigLayout::kAoS);
  EXPECT_THROW((void)config_layout_by_name("bogus"), std::invalid_argument);
}

TEST(ConfigStore, RoundTripsAndFieldAccessAcrossLayouts) {
  const Graph g = make_ring(6);
  const Config<LeaderState> init = random_leader_config(g, 3);
  for (const ConfigLayout layout : {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
    ConfigStore<LeaderState> store(init, layout);
    EXPECT_EQ(store.layout(), layout);
    const ConfigView<LeaderState> view = store.view();
    for (std::size_t i = 0; i < init.size(); ++i) {
      EXPECT_TRUE(view.get(i) == init[i]);
      EXPECT_EQ(view.field<kLeaderField>(i), init[i].leader);
      EXPECT_EQ(view.field<kDistField>(i), init[i].dist);
    }
    store.set(2, LeaderState{-5, 9});
    EXPECT_TRUE(store.get(2) == (LeaderState{-5, 9}));
    EXPECT_EQ(store.view().field<kDistField>(2), 9);
    EXPECT_TRUE(store.materialize() != init);
    Config<LeaderState> expected = init;
    expected[2] = LeaderState{-5, 9};
    EXPECT_TRUE(store.take() == expected);
  }
}

TEST(ConfigStore, DenseApplyMatchesNaiveApply) {
  const Graph g = make_ring(10);
  for (const ConfigLayout layout : {ConfigLayout::kAoS, ConfigLayout::kSoA}) {
    const Config<HotColdState> init = random_hotcold(g, 11);
    const HotColdProtocol proto;
    const std::vector<VertexId> activated = {0, 3, 4, 7, 9};

    Config<HotColdState> expected = init;
    for (VertexId v : activated) {
      expected[static_cast<std::size_t>(v)] = proto.apply(g, init, v);
    }

    ConfigStore<HotColdState> store(init, layout);
    store.dense_apply(activated, [&](ConfigView<HotColdState> prev,
                                     VertexId v) {
      return proto.apply(g, prev, v);
    });
    EXPECT_TRUE(store.materialize() == expected);
    // The swapped-out buffer still reads the pre-action configuration.
    EXPECT_TRUE(store.prev_view().materialize() == init);
  }
}

}  // namespace
}  // namespace specstab
