// Tests for the self-stabilizing leader-election extension: ghost
// flushing, silent termination, arbitrary identities, daemon portfolio
// convergence.
#include "extensions/leader_election.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "core/speculation.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace specstab {
namespace {

static_assert(ProtocolConcept<LeaderElectionProtocol>,
              "leader election must satisfy ProtocolConcept");

LegitimacyPredicate<LeaderState> legit_of(
    const LeaderElectionProtocol& proto) {
  return [&proto](const Graph& g, ConfigView<LeaderState> c) {
    return proto.legitimate(g, c);
  };
}

TEST(LeaderElectionTest, RejectsMalformedIdentities) {
  const Graph g = make_ring(4);
  EXPECT_THROW(LeaderElectionProtocol(g, {1, 2, 3}), std::invalid_argument);
  EXPECT_THROW(LeaderElectionProtocol(g, {1, 2, 2, 4}), std::invalid_argument);
}

TEST(LeaderElectionTest, MinIdentityIsTracked) {
  const Graph g = make_path(5);
  const LeaderElectionProtocol proto(g, {30, 10, 50, 20, 40});
  EXPECT_EQ(proto.min_id(), 10);
  EXPECT_EQ(proto.min_id_vertex(), 1);
}

TEST(LeaderElectionTest, ElectedConfigIsTerminal) {
  for (const auto& g : {make_ring(8), make_grid(3, 4), make_binary_tree(15)}) {
    const LeaderElectionProtocol proto(g);
    const auto cfg = proto.elected_config(g);
    EXPECT_TRUE(is_terminal(g, proto, cfg));
    EXPECT_TRUE(proto.legitimate(g, cfg));
  }
}

TEST(LeaderElectionTest, ElectedConfigHasBfsDistances) {
  const Graph g = make_grid(3, 3);
  const LeaderElectionProtocol proto(g, {5, 6, 7, 8, 0, 9, 10, 11, 12});
  const auto cfg = proto.elected_config(g);
  const auto dist = bfs_distances(g, proto.min_id_vertex());
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(cfg[static_cast<std::size_t>(v)].leader, 0);
    EXPECT_EQ(cfg[static_cast<std::size_t>(v)].dist,
              dist[static_cast<std::size_t>(v)]);
  }
}

TEST(LeaderElectionTest, ConvergesFromRandomConfigsUnderSynchronousDaemon) {
  for (const auto& g : {make_ring(9), make_path(10), make_grid(3, 4)}) {
    const LeaderElectionProtocol proto(g);
    SynchronousDaemon d;
    RunOptions opt;
    opt.max_steps = 10 * g.n();
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      const auto res = run_execution(g, proto, d,
                                     random_leader_config(g, seed), opt,
                                     legit_of(proto));
      ASSERT_TRUE(res.terminated) << seed;
      EXPECT_TRUE(proto.legitimate(g, res.final_config)) << seed;
    }
  }
}

TEST(LeaderElectionTest, GhostLeaderIsFlushedWithinNplusEccSteps) {
  const Graph g = make_path(12);
  const LeaderElectionProtocol proto(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 10 * g.n();
  // Every vertex believes ghost leader -1 at distance 0: the worst case.
  const auto res = run_execution(g, proto, d, ghost_leader_config(g, proto, 0),
                                 opt, legit_of(proto));
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(proto.legitimate(g, res.final_config));
  // Flush takes < n rounds (the claimed distance climbs to the bound),
  // then the real minimum floods in <= ecc(argmin) more.
  const auto bound = static_cast<StepIndex>(g.n()) +
                     static_cast<StepIndex>(eccentricity(g, 0));
  EXPECT_LE(res.convergence_steps(), bound);
}

TEST(LeaderElectionTest, GhostFreeMonotoneUnderSynchronousDaemon) {
  // Once all ghosts are flushed, no rule reintroduces one.
  const Graph g = make_ring(10);
  const LeaderElectionProtocol proto(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 10 * g.n();
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, random_leader_config(g, 3), opt,
                                 legit_of(proto));
  bool seen_ghost_free = false;
  for (const auto& cfg : res.trace) {
    const bool gf = proto.ghost_free(g, cfg);
    if (seen_ghost_free) {
      EXPECT_TRUE(gf);
    }
    seen_ghost_free = seen_ghost_free || gf;
  }
  EXPECT_TRUE(seen_ghost_free);
}

TEST(LeaderElectionTest, ArbitraryIdentitiesElectTheRightVertex) {
  const Graph g = make_random_connected(14, 0.2, 5);
  const LeaderElectionProtocol proto(
      g, {91, 17, 33, 8, 54, 71, 29, 63, 42, 99, 12, 77, 85, 20});
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 20 * g.n();
  const auto res = run_execution(g, proto, d, random_leader_config(g, 7), opt,
                                 legit_of(proto));
  ASSERT_TRUE(res.terminated);
  EXPECT_EQ(proto.min_id(), 8);
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(res.final_config[static_cast<std::size_t>(v)].leader, 8);
  }
}

TEST(LeaderElectionTest, ConvergesUnderFullAdversaryPortfolio) {
  const Graph g = make_grid(3, 3);
  const LeaderElectionProtocol proto(g);
  auto portfolio = AdversaryPortfolio::standard(0xfeed);
  RunOptions opt;
  opt.max_steps = 200 * g.n();
  std::vector<Config<LeaderState>> inits;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    inits.push_back(random_leader_config(g, seed));
  }
  inits.push_back(ghost_leader_config(g, proto, 0));
  const auto pm =
      measure_portfolio(g, proto, portfolio, inits, legit_of(proto), opt);
  EXPECT_TRUE(pm.all_converged);
  EXPECT_GT(pm.worst_steps, 0);
}

TEST(LeaderElectionTest, SilentOnceStabilized) {
  const Graph g = make_binary_tree(15);
  const LeaderElectionProtocol proto(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 20 * g.n();
  const auto res = run_execution(g, proto, d, random_leader_config(g, 9), opt,
                                 legit_of(proto));
  ASSERT_TRUE(res.terminated);
  EXPECT_TRUE(is_terminal(g, proto, res.final_config));
}

// Sweep: ghost flush time scales with n (not diam alone) — the claimed
// distance must climb to the bound.
class GhostFlushSweep : public ::testing::TestWithParam<VertexId> {};

TEST_P(GhostFlushSweep, FlushWithinBound) {
  const VertexId n = GetParam();
  const Graph g = make_ring(n);
  const LeaderElectionProtocol proto(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 20 * n;
  const auto res = run_execution(g, proto, d, ghost_leader_config(g, proto, 0),
                                 opt, legit_of(proto));
  ASSERT_TRUE(res.terminated);
  EXPECT_LE(res.convergence_steps(),
            static_cast<StepIndex>(n) +
                static_cast<StepIndex>(eccentricity(g, 0)));
}

INSTANTIATE_TEST_SUITE_P(Rings, GhostFlushSweep,
                         ::testing::Values(4, 6, 8, 12, 16, 24, 32));

}  // namespace
}  // namespace specstab
