// Property harness for the incremental legitimacy checkers: along real
// executions (and across injected corruptions) the cached verdict must
// equal a from-scratch evaluation of the predicate after every enabled
// move — including the re-convergence path, where legitimacy is lost and
// later regained and the checker's cached counts must follow both
// transitions.
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/dijkstra_ring.hpp"
#include "baselines/matching.hpp"
#include "baselines/min_plus_one.hpp"
#include "baselines/unbounded_unison.hpp"
#include "core/adversarial_configs.hpp"
#include "core/incremental_legitimacy.hpp"
#include "core/ssme.hpp"
#include "extensions/coloring.hpp"
#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

template <class State>
std::vector<VertexId> changed_vertices(const Config<State>& before,
                                       const Config<State>& after) {
  std::vector<VertexId> changed;
  for (VertexId v = 0; v < static_cast<VertexId>(before.size()); ++v) {
    if (before[static_cast<std::size_t>(v)] !=
        after[static_cast<std::size_t>(v)]) {
      changed.push_back(v);
    }
  }
  return changed;
}

/// Feeds a recorded trace through `checker` move by move and asserts the
/// incremental verdict equals the from-scratch one (checker.full on a
/// pristine copy) at every configuration.  `start` skips prefix configs
/// whose updates were already fed (the corruption path re-enters with a
/// warm checker).
template <class State, class Checker>
void walk_trace(const Graph& g, const std::vector<Config<State>>& trace,
                Checker& checker, Checker& oracle, std::size_t start = 0) {
  ASSERT_FALSE(trace.empty());
  if (start == 0) {
    const bool legit = checker.init(g, trace[0]);
    EXPECT_EQ(legit, oracle.full(g, trace[0])) << "config 0";
  }
  for (std::size_t i = std::max<std::size_t>(start, 1); i < trace.size();
       ++i) {
    const auto changed = changed_vertices(trace[i - 1], trace[i]);
    const bool legit = checker.on_update(g, trace[i], changed);
    EXPECT_EQ(legit, oracle.full(g, trace[i])) << "config " << i;
    if (::testing::Test::HasFailure()) return;
  }
}

/// Runs the reference engine with trace recording, walks the trace with
/// a warm checker, then corrupts single vertices of the final
/// configuration, feeds the corruption as an incremental update, and
/// walks a continuation run — legitimacy lost and regained end to end.
template <ProtocolConcept P, class Checker, class Corrupt>
void closure_property(const Graph& g, const P& proto,
                      Config<typename P::State> init, Checker checker,
                      Checker oracle, const std::string& daemon_name,
                      std::uint64_t seed, StepIndex max_steps,
                      Corrupt corrupt) {
  RunOptions opt;
  opt.max_steps = max_steps;
  opt.record_trace = true;

  auto daemon = make_daemon(daemon_name, seed);
  const auto res =
      run_execution(g, proto, *daemon, std::move(init), opt, nullptr);
  walk_trace(g, res.trace.materialize(), checker, oracle);
  if (::testing::Test::HasFailure()) return;

  // Corruption: a transient fault hits one vertex; the checker must track
  // it incrementally, then follow the re-stabilizing continuation.
  std::mt19937_64 rng(seed ^ 0xc0ffee);
  Config<typename P::State> cfg = res.final_config;
  const VertexId victim = static_cast<VertexId>(rng() % g.n());
  cfg[static_cast<std::size_t>(victim)] = corrupt(cfg, victim, rng);
  const bool legit = checker.on_update(g, cfg, {victim});
  EXPECT_EQ(legit, oracle.full(g, cfg)) << "after corrupting " << victim;

  auto daemon2 = make_daemon(daemon_name, seed + 1);
  const auto cont =
      run_execution(g, proto, *daemon2, std::move(cfg), opt, nullptr);
  walk_trace(g, cont.trace.materialize(), checker, oracle, /*start=*/1);
}

std::vector<Graph> small_topologies() {
  std::vector<Graph> out;
  out.push_back(make_ring(9));
  out.push_back(make_path(8));
  out.push_back(make_grid(3, 3));
  return out;
}

const std::vector<std::string>& closure_daemons() {
  static const std::vector<std::string> daemons = {"synchronous",
                                                   "bernoulli-0.5"};
  return daemons;
}

TEST(LegitimacyClosureTest, Gamma1) {
  for (const Graph& g : small_topologies()) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    for (const auto& daemon : closure_daemons()) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        // Legitimate and arbitrary samples: zero_config is in Gamma_1.
        auto init = seed % 2 == 0 ? zero_config(g)
                                  : random_config(g, proto.clock(), seed);
        closure_property(
            g, proto, std::move(init), make_gamma1_checker(proto),
            make_gamma1_checker(proto), daemon, seed, 120,
            [&proto](const Config<ClockValue>&, VertexId,
                     std::mt19937_64& rng) {
              return static_cast<ClockValue>(
                  rng() % static_cast<std::uint64_t>(proto.params().k));
            });
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(LegitimacyClosureTest, MutexSafetyLostAndRegained) {
  // The two-gradient witness starts safe, goes unsafe (double privilege),
  // and stabilizes — the canonical re-convergence sequence.
  for (const Graph& g : small_topologies()) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    for (const auto& daemon : closure_daemons()) {
      closure_property(
          g, proto, two_gradient_config(g, proto),
          make_mutex_safety_checker(proto), make_mutex_safety_checker(proto),
          daemon, 7, 150,
          [&proto](const Config<ClockValue>&, VertexId v, std::mt19937_64&) {
            // Plant a privileged value: maximally disruptive for spec_ME.
            return proto.params().privileged_value(v);
          });
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(LegitimacyClosureTest, SingleToken) {
  for (VertexId n : {5, 9}) {
    const Graph g = make_ring(n);
    const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
    for (const auto& daemon : closure_daemons()) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        // Legitimate sample: all-equal counters (single token at the
        // bottom machine); otherwise the max-token adversarial config.
        Config<DijkstraRingProtocol::State> init(
            static_cast<std::size_t>(n),
            static_cast<DijkstraRingProtocol::State>(seed % proto.k()));
        if (seed % 2 == 0) init = proto.max_token_config();
        closure_property(
            g, proto, std::move(init), make_single_token_checker(proto),
            make_single_token_checker(proto), daemon, seed, 150,
            [&proto](const Config<DijkstraRingProtocol::State>&, VertexId,
                     std::mt19937_64& rng) {
              return static_cast<DijkstraRingProtocol::State>(
                  rng() % static_cast<std::uint64_t>(proto.k()));
            });
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(LegitimacyClosureTest, Matching) {
  for (const Graph& g : small_topologies()) {
    const MatchingProtocol proto;
    for (const auto& daemon : closure_daemons()) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        std::mt19937_64 rng(seed);
        Config<MatchingProtocol::State> init(static_cast<std::size_t>(g.n()));
        for (auto& p : init) {
          p = static_cast<MatchingProtocol::State>(
              static_cast<std::int64_t>(rng() % (g.n() + 4)) - 2);
        }
        closure_property(
            g, proto, std::move(init), make_matching_checker(proto),
            make_matching_checker(proto), daemon, seed, 200,
            [&g](const Config<MatchingProtocol::State>&, VertexId,
                 std::mt19937_64& rng2) {
              return static_cast<MatchingProtocol::State>(rng2() % g.n());
            });
        if (::testing::Test::HasFailure()) return;
      }
    }
  }
}

TEST(LegitimacyClosureTest, MinPlusOneAndLeaderAndColoring) {
  for (const Graph& g : small_topologies()) {
    const MinPlusOneProtocol mpo(g);
    const LeaderElectionProtocol le(g);
    const ColoringProtocol col(g);
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      // Legitimate samples for even seeds: the unique fixpoints.
      std::mt19937_64 rng(seed);
      Config<MinPlusOneProtocol::State> mpo_init = mpo.exact_levels();
      if (seed % 2) {
        for (auto& v : mpo_init) {
          v = static_cast<MinPlusOneProtocol::State>(rng() %
                                                     (mpo.level_cap() + 1));
        }
      }
      closure_property(
          g, mpo, std::move(mpo_init), make_min_plus_one_checker(mpo),
          make_min_plus_one_checker(mpo), "bernoulli-0.5", seed, 200,
          [&mpo](const Config<MinPlusOneProtocol::State>&, VertexId,
                 std::mt19937_64& rng2) {
            return static_cast<MinPlusOneProtocol::State>(
                rng2() % static_cast<std::uint64_t>(mpo.level_cap() + 1));
          });
      if (::testing::Test::HasFailure()) return;

      auto le_init = seed % 2 ? random_leader_config(g, seed)
                              : le.elected_config(g);
      closure_property(g, le, std::move(le_init),
                       make_leader_election_checker(le, g),
                       make_leader_election_checker(le, g), "bernoulli-0.5",
                       seed, 400,
                       [&g](const Config<LeaderState>&, VertexId,
                            std::mt19937_64& rng2) {
                         return LeaderState{
                             static_cast<std::int32_t>(rng2() % 5) - 2,
                             static_cast<std::int32_t>(rng2() % g.n())};
                       });
      if (::testing::Test::HasFailure()) return;

      closure_property(
          g, col, random_coloring_config(g, col.palette_size(), seed),
          make_coloring_checker(col), make_coloring_checker(col),
          "bernoulli-0.5", seed, 200,
          [&col](const Config<ColoringProtocol::State>&, VertexId,
                 std::mt19937_64& rng2) {
            return static_cast<ColoringProtocol::State>(
                static_cast<std::int64_t>(
                    rng2() % static_cast<std::uint64_t>(
                                 3 * col.palette_size())) -
                col.palette_size());
          });
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(LegitimacyClosureTest, UnboundedUnison) {
  const UnboundedUnisonProtocol proto;
  for (const Graph& g : small_topologies()) {
    for (std::uint64_t seed = 1; seed <= 4; ++seed) {
      std::mt19937_64 rng(seed);
      Config<UnboundedUnisonProtocol::State> init(
          static_cast<std::size_t>(g.n()));
      // Legitimate sample for even seeds: the all-equal configuration.
      for (auto& v : init) {
        v = seed % 2 ? static_cast<std::int64_t>(rng() % 16) : 7;
      }
      closure_property(
          g, proto, std::move(init), make_unbounded_unison_checker(proto),
          make_unbounded_unison_checker(proto), "bernoulli-0.5", seed, 200,
          [](const Config<UnboundedUnisonProtocol::State>&, VertexId,
             std::mt19937_64& rng2) {
            return static_cast<std::int64_t>(rng2() % 40);
          });
      if (::testing::Test::HasFailure()) return;
    }
  }
}

TEST(LegitimacyClosureTest, CheckerReusableAcrossGraphSizes) {
  // One checker instance serves runs on graphs of different sizes
  // (measure_convergence's contract): init() must fully rebuild the
  // caches and the radius-ball expander for the new vertex count.  The
  // unbounded-unison checker is graph-agnostic, so the same instance
  // legitimately moves between graphs.
  const UnboundedUnisonProtocol proto;
  auto checker = make_unbounded_unison_checker(proto);

  const Graph small = make_ring(6);
  Config<UnboundedUnisonProtocol::State> cfg(6, 0);
  checker.init(small, cfg);
  cfg[3] = 9;
  checker.on_update(small, cfg, {3});
  EXPECT_FALSE(checker.on_update(small, cfg, {3}));

  // Same instance, bigger graph: updates must touch vertices beyond the
  // small graph's range without corruption (ASan-visible if broken).
  const Graph large = make_ring(24);
  Config<UnboundedUnisonProtocol::State> big(24, 1);
  EXPECT_TRUE(checker.init(large, big));
  for (VertexId v : {VertexId{23}, VertexId{12}}) {
    big[static_cast<std::size_t>(v)] = 40 + v;
    checker.on_update(large, big, {v});
  }
  std::int64_t expected = 0;
  for (VertexId v = 0; v < large.n(); ++v) {
    for (VertexId u : large.neighbors(v)) {
      const auto d = big[static_cast<std::size_t>(v)] -
                     big[static_cast<std::size_t>(u)];
      if (d > 1 || d < -1) ++expected;
    }
  }
  EXPECT_EQ(checker.total(), expected);
}

TEST(LegitimacyClosureTest, CachedTotalMatchesFromScratchSum) {
  // White-box: the cached violation total itself (not only the verdict)
  // must equal the from-scratch sum after a long randomized update walk.
  const Graph g = make_grid(3, 4);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  auto checker = make_gamma1_checker(proto);
  auto cfg = random_config(g, proto.clock(), 99);
  checker.init(g, cfg);
  std::mt19937_64 rng(1234);
  for (int step = 0; step < 500; ++step) {
    const VertexId v = static_cast<VertexId>(rng() % g.n());
    cfg[static_cast<std::size_t>(v)] = static_cast<ClockValue>(
        rng() % static_cast<std::uint64_t>(proto.params().k));
    checker.on_update(g, cfg, {v});
    std::int64_t expected = 0;
    for (VertexId w = 0; w < g.n(); ++w) {
      expected += proto.unison().locally_legitimate(g, cfg, w) ? 0 : 1;
    }
    ASSERT_EQ(checker.total(), expected) << "step " << step;
  }
}

}  // namespace
}  // namespace specstab
