// Locality cross-check: brute-forces the true guard-dependency radius of
// every protocol on small graphs and asserts it is <= the declared
// locality_radius().  The incremental engine re-tests guards only inside
// the declared radius after an action, so a protocol that understates its
// radius would silently corrupt the enabled set — this test makes that
// fail loudly instead (demonstrated on a genuinely 2-hop protocol
// declaring radius 1).
#include <gtest/gtest.h>

#include <random>
#include <vector>

#include "baselines/dijkstra_ring.hpp"
#include "baselines/matching.hpp"
#include "baselines/min_plus_one.hpp"
#include "baselines/unbounded_unison.hpp"
#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "extensions/coloring.hpp"
#include "extensions/leader_election.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/protocol.hpp"
#include "test_protocols.hpp"

namespace specstab {
namespace {

/// True iff some mutation outside the declared radius ball around some
/// vertex v changes enabled(v) (or the successor state of an enabled v):
/// a counterexample to the declared locality.
template <ProtocolConcept P, class MutateFn>
bool find_locality_violation(const Graph& g, const P& proto,
                             Config<typename P::State> cfg,
                             MutateFn mutate, std::mt19937_64& rng,
                             int mutations_per_pair) {
  const VertexId radius = protocol_locality_radius(proto);
  for (VertexId v = 0; v < g.n(); ++v) {
    const auto dist = bfs_distances(g, v);
    const bool was_enabled = proto.enabled(g, cfg, v);
    const auto was_successor =
        was_enabled ? proto.apply(g, cfg, v) : typename P::State{};
    for (VertexId w = 0; w < g.n(); ++w) {
      if (dist[static_cast<std::size_t>(w)] <= radius) continue;
      const auto saved = cfg[static_cast<std::size_t>(w)];
      for (int m = 0; m < mutations_per_pair; ++m) {
        cfg[static_cast<std::size_t>(w)] = mutate(rng);
        if (proto.enabled(g, cfg, v) != was_enabled) return true;
        if (was_enabled && proto.apply(g, cfg, v) != was_successor) {
          return true;
        }
      }
      cfg[static_cast<std::size_t>(w)] = saved;
    }
  }
  return false;
}

std::vector<Graph> probe_topologies() {
  std::vector<Graph> out;
  out.push_back(make_path(7));
  out.push_back(make_ring(8));
  out.push_back(make_grid(3, 3));
  return out;
}

constexpr int kConfigsPerGraph = 8;
constexpr int kMutationsPerPair = 4;

TEST(LocalityRadiusTest, SsmeWithinDeclaredRadius) {
  for (const Graph& g : probe_topologies()) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    std::mt19937_64 rng(11);
    for (int c = 0; c < kConfigsPerGraph; ++c) {
      auto cfg = random_config(g, proto.clock(), 100 + c);
      EXPECT_FALSE(find_locality_violation(
          g, proto, std::move(cfg),
          [&proto](std::mt19937_64& r) {
            return static_cast<ClockValue>(
                r() % static_cast<std::uint64_t>(proto.params().k));
          },
          rng, kMutationsPerPair))
          << "n=" << g.n();
    }
  }
}

TEST(LocalityRadiusTest, DijkstraRingWithinDeclaredRadius) {
  const Graph g = make_ring(9);
  const DijkstraRingProtocol proto = DijkstraRingProtocol::for_ring(g);
  std::mt19937_64 rng(13);
  for (int c = 0; c < kConfigsPerGraph; ++c) {
    Config<DijkstraRingProtocol::State> cfg(static_cast<std::size_t>(g.n()));
    for (auto& s : cfg) {
      s = static_cast<DijkstraRingProtocol::State>(
          rng() % static_cast<std::uint64_t>(proto.k()));
    }
    EXPECT_FALSE(find_locality_violation(
        g, proto, std::move(cfg),
        [&proto](std::mt19937_64& r) {
          return static_cast<DijkstraRingProtocol::State>(
              r() % static_cast<std::uint64_t>(proto.k()));
        },
        rng, kMutationsPerPair));
  }
}

TEST(LocalityRadiusTest, MatchingWithinDeclaredRadius) {
  for (const Graph& g : probe_topologies()) {
    const MatchingProtocol proto;
    std::mt19937_64 rng(17);
    for (int c = 0; c < kConfigsPerGraph; ++c) {
      Config<MatchingProtocol::State> cfg(static_cast<std::size_t>(g.n()));
      for (auto& s : cfg) {
        s = static_cast<MatchingProtocol::State>(
            static_cast<std::int64_t>(rng() % (g.n() + 3)) - 2);
      }
      EXPECT_FALSE(find_locality_violation(
          g, proto, std::move(cfg),
          [&g](std::mt19937_64& r) {
            return static_cast<MatchingProtocol::State>(
                static_cast<std::int64_t>(r() % (g.n() + 3)) - 2);
          },
          rng, kMutationsPerPair))
          << "n=" << g.n();
    }
  }
}

TEST(LocalityRadiusTest, RemainingProtocolsWithinDefaultRadius) {
  for (const Graph& g : probe_topologies()) {
    const MinPlusOneProtocol mpo(g);
    const ColoringProtocol col(g);
    const LeaderElectionProtocol le(g);
    const UnboundedUnisonProtocol uu;
    std::mt19937_64 rng(19);
    for (int c = 0; c < kConfigsPerGraph; ++c) {
      Config<MinPlusOneProtocol::State> mpo_cfg(
          static_cast<std::size_t>(g.n()));
      for (auto& s : mpo_cfg) {
        s = static_cast<MinPlusOneProtocol::State>(
            rng() % static_cast<std::uint64_t>(mpo.level_cap() + 1));
      }
      EXPECT_FALSE(find_locality_violation(
          g, mpo, std::move(mpo_cfg),
          [&mpo](std::mt19937_64& r) {
            return static_cast<MinPlusOneProtocol::State>(
                r() % static_cast<std::uint64_t>(mpo.level_cap() + 1));
          },
          rng, kMutationsPerPair));

      EXPECT_FALSE(find_locality_violation(
          g, col, random_coloring_config(g, col.palette_size(), 300 + c),
          [&col](std::mt19937_64& r) {
            return static_cast<ColoringProtocol::State>(
                static_cast<std::int64_t>(
                    r() % static_cast<std::uint64_t>(3 * col.palette_size())) -
                col.palette_size());
          },
          rng, kMutationsPerPair));

      EXPECT_FALSE(find_locality_violation(
          g, le, random_leader_config(g, 400 + c),
          [&g](std::mt19937_64& r) {
            return LeaderState{static_cast<std::int32_t>(r() % (2 * g.n())) -
                                   g.n(),
                               static_cast<std::int32_t>(r() % (2 * g.n()))};
          },
          rng, kMutationsPerPair));

      Config<UnboundedUnisonProtocol::State> uu_cfg(
          static_cast<std::size_t>(g.n()));
      for (auto& s : uu_cfg) s = static_cast<std::int64_t>(rng() % 12);
      EXPECT_FALSE(find_locality_violation(
          g, uu, std::move(uu_cfg),
          [](std::mt19937_64& r) {
            return static_cast<std::int64_t>(r() % 12);
          },
          rng, kMutationsPerPair));
    }
  }
}

TEST(LocalityRadiusTest, TwoHopProtocolNeedsRadiusTwo) {
  // Correctly declared radius 2: no violation found.
  for (const Graph& g : probe_topologies()) {
    const TwoHopMaxProtocol honest(2);
    std::mt19937_64 rng(23);
    for (int c = 0; c < kConfigsPerGraph; ++c) {
      Config<std::int32_t> cfg(static_cast<std::size_t>(g.n()));
      for (auto& s : cfg) s = static_cast<std::int32_t>(rng() % 30);
      EXPECT_FALSE(find_locality_violation(
          g, honest, std::move(cfg),
          [](std::mt19937_64& r) {
            return static_cast<std::int32_t>(r() % 30);
          },
          rng, kMutationsPerPair));
    }
  }

  // Understated radius 1: the brute-forcer must catch it — this is the
  // "fails loudly" guarantee a future wide-dependency protocol relies on.
  const Graph g = make_path(7);
  const TwoHopMaxProtocol lying(1);
  std::mt19937_64 rng(29);
  bool caught = false;
  for (int c = 0; c < kConfigsPerGraph && !caught; ++c) {
    Config<std::int32_t> cfg(static_cast<std::size_t>(g.n()));
    for (auto& s : cfg) s = static_cast<std::int32_t>(rng() % 30);
    caught = find_locality_violation(
        g, lying, std::move(cfg),
        [](std::mt19937_64& r) { return static_cast<std::int32_t>(r() % 30); },
        rng, kMutationsPerPair);
  }
  EXPECT_TRUE(caught) << "an understated locality radius went undetected";
}

}  // namespace
}  // namespace specstab
