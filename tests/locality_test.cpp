// Lemma 5 (the engine of the Theorem 4 lower bound), checked
// operationally: if two configurations agree on the k-ball around v, the
// synchronous executions from them agree on v's restriction for k steps —
// information travels one hop per step.
#include <gtest/gtest.h>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

// Runs the synchronous execution of SSME from `init` for `steps` steps
// and returns the restriction to v (gamma_0(v) .. gamma_steps(v)).
std::vector<ClockValue> restriction(const Graph& g, const SsmeProtocol& proto,
                                    Config<ClockValue> init, VertexId v,
                                    StepIndex steps) {
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = steps;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, std::move(init), opt);
  std::vector<ClockValue> out;
  for (const auto& cfg : res.trace) {
    out.push_back(cfg[static_cast<std::size_t>(v)]);
  }
  return out;
}

// Overwrites everything OUTSIDE the k-ball around v with values from a
// second configuration.
Config<ClockValue> splice_outside_ball(const Graph& g,
                                       const Config<ClockValue>& inside,
                                       const Config<ClockValue>& outside,
                                       VertexId v, VertexId k) {
  const auto dist = bfs_distances(g, v);
  Config<ClockValue> out = inside;
  for (VertexId w = 0; w < g.n(); ++w) {
    if (dist[static_cast<std::size_t>(w)] > k) {
      out[static_cast<std::size_t>(w)] =
          outside[static_cast<std::size_t>(w)];
    }
  }
  return out;
}

class LocalitySweep : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LocalitySweep, RestrictionsAgreeForKSteps) {
  const std::uint64_t seed = GetParam();
  for (const Graph& g : {make_path(11), make_ring(12), make_grid(3, 5)}) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    const auto a = random_config(g, proto.clock(), seed);
    const auto b = random_config(g, proto.clock(), seed ^ 0xffffULL);
    for (VertexId v : {static_cast<VertexId>(0),
                       static_cast<VertexId>(g.n() / 2)}) {
      for (VertexId k = 1; k <= std::min<VertexId>(4, diameter(g)); ++k) {
        // b' agrees with a on the k-ball around v, differs elsewhere.
        const auto spliced = splice_outside_ball(g, a, b, v, k);
        const auto ra = restriction(g, proto, a, v, k);
        const auto rb = restriction(g, proto, spliced, v, k);
        EXPECT_EQ(ra, rb) << "n=" << g.n() << " v=" << v << " k=" << k;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LocalitySweep,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

TEST(LocalityTest, InformationEventuallyArrives) {
  // Complement: for k' > k the restrictions generally diverge — distant
  // state does reach v after dist steps (otherwise stabilization itself
  // would be impossible).  We check a concrete instance.
  const Graph g = make_path(9);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  // a: all zeros (quiet).  b: far end corrupted to an incomparable value.
  const auto a = zero_config(g);
  auto b = a;
  b[8] = proto.params().privileged_value(5);  // far from 0 on the ring
  const VertexId v = 0;
  // Same 3-ball around v, so 3 steps agree...
  const auto ra = restriction(g, proto, a, v, 3);
  const auto rb = restriction(g, proto, b, v, 3);
  EXPECT_EQ(ra, rb);
  // ...but by 8 + alpha steps the reset wave has reached and moved v.
  const StepIndex horizon = 8 + proto.params().alpha + 4;
  const auto la = restriction(g, proto, a, v, horizon);
  const auto lb = restriction(g, proto, b, v, horizon);
  EXPECT_NE(la, lb);
}

}  // namespace
}  // namespace specstab
