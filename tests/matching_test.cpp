// Tests for the Manne et al. self-stabilizing maximal matching
// (Section 3 example).
#include "baselines/matching.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

using PState = MatchingProtocol::State;
using Legit = std::function<bool(const Graph&, const Config<PState>&)>;

Legit stable(const MatchingProtocol& proto) {
  return [&proto](const Graph& g, const Config<PState>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

Config<PState> random_pointers(const Graph& g, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  Config<PState> cfg(static_cast<std::size_t>(g.n()));
  for (VertexId v = 0; v < g.n(); ++v) {
    // null, a random neighbour, or (rarely) garbage outside the
    // neighbourhood — transient faults corrupt arbitrarily.
    std::uniform_int_distribution<int> kind(0, 5);
    const int k = kind(rng);
    if (k == 0) {
      cfg[static_cast<std::size_t>(v)] = MatchingProtocol::kNull;
    } else if (k == 5) {
      std::uniform_int_distribution<VertexId> any(0, g.n() - 1);
      cfg[static_cast<std::size_t>(v)] = any(rng);
    } else {
      const auto& nb = g.neighbors(v);
      if (nb.empty()) {
        cfg[static_cast<std::size_t>(v)] = MatchingProtocol::kNull;
      } else {
        std::uniform_int_distribution<std::size_t> pick(0, nb.size() - 1);
        cfg[static_cast<std::size_t>(v)] = nb[pick(rng)];
      }
    }
  }
  return cfg;
}

TEST(MatchingTest, GuardsOnTinyGraph) {
  const Graph g = make_path(2);
  const MatchingProtocol proto;
  // Both null: 0 seduces 1 (higher id), 1 has no higher neighbour.
  Config<PState> cfg{MatchingProtocol::kNull, MatchingProtocol::kNull};
  EXPECT_TRUE(proto.seduction_guard(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 0), 1);
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "SEDUCTION");
  // 0 proposed: 1 marries.
  cfg = {1, MatchingProtocol::kNull};
  EXPECT_TRUE(proto.marriage_guard(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 1), 0);
  EXPECT_EQ(proto.rule_name(g, cfg, 1), "MARRIAGE");
  // Married: silent.
  cfg = {1, 0};
  EXPECT_FALSE(proto.enabled(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 1));
  EXPECT_TRUE(proto.legitimate(g, cfg));
  EXPECT_TRUE(proto.married(g, cfg, 0));
}

TEST(MatchingTest, AbandonmentOnHopelessProposal) {
  const Graph g = make_path(3);
  const MatchingProtocol proto;
  // 1 points at 0 (downward proposal, 0 not pointing back): hopeless.
  Config<PState> cfg{MatchingProtocol::kNull, 0, MatchingProtocol::kNull};
  // Vertex 0 could marry (1 points at it) — but vertex 1's proposal is
  // downward, so 1 itself is NOT abandonment-enabled unless 0 is engaged.
  EXPECT_TRUE(proto.marriage_guard(g, cfg, 0));
  EXPECT_TRUE(proto.abandonment_guard(g, cfg, 1));  // pv = 0 <= 1
  // 1 points at 2, 2 points elsewhere (engaged): hopeless.
  cfg = {MatchingProtocol::kNull, 2, 1};
  EXPECT_TRUE(proto.married(g, cfg, 1));  // actually mutual: married
  EXPECT_FALSE(proto.abandonment_guard(g, cfg, 1));
}

TEST(MatchingTest, GarbagePointerIsAbandoned) {
  const Graph g = make_path(3);
  const MatchingProtocol proto;
  // Vertex 0 points at 2 (not a neighbour).
  const Config<PState> cfg{2, MatchingProtocol::kNull,
                           MatchingProtocol::kNull};
  EXPECT_TRUE(proto.abandonment_guard(g, cfg, 0));
  EXPECT_EQ(proto.apply(g, cfg, 0), MatchingProtocol::kNull);
}

TEST(MatchingTest, GuardsAreMutuallyExclusive) {
  const Graph g = make_random_connected(7, 0.4, 3);
  const MatchingProtocol proto;
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    const auto cfg = random_pointers(g, seed);
    for (VertexId v = 0; v < g.n(); ++v) {
      const int guards = (proto.marriage_guard(g, cfg, v) ? 1 : 0) +
                         (proto.seduction_guard(g, cfg, v) ? 1 : 0) +
                         (proto.abandonment_guard(g, cfg, v) ? 1 : 0);
      EXPECT_LE(guards, 1) << "seed=" << seed << " v=" << v;
    }
  }
}

TEST(MatchingTest, TerminalConfigsAreMaximalMatchings) {
  const std::vector<Graph> graphs = {
      make_path(7),  make_ring(8),          make_complete(6),
      make_star(7),  make_grid(3, 4),       make_petersen(),
      make_wheel(7), make_complete_bipartite(3, 4)};
  for (const Graph& g : graphs) {
    const MatchingProtocol proto;
    SynchronousDaemon d;
    for (std::uint64_t seed = 0; seed < 5; ++seed) {
      RunOptions opt;
      opt.max_steps = 100000;
      const auto res = run_execution(g, proto, d, random_pointers(g, seed),
                                     opt, stable(proto));
      ASSERT_TRUE(res.terminated) << "n=" << g.n() << " seed=" << seed;
      EXPECT_TRUE(proto.is_maximal_matching(g, res.final_config))
          << "n=" << g.n() << " seed=" << seed;
    }
  }
}

TEST(MatchingTest, SynchronousConvergenceWithinBound) {
  // Section 3: 2n+1 steps under sd.
  for (const Graph& g :
       {make_ring(10), make_grid(3, 5), make_random_connected(12, 0.3, 9)}) {
    const MatchingProtocol proto;
    SynchronousDaemon d;
    const std::int64_t bound = matching_sync_bound(g.n());
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      RunOptions opt;
      opt.max_steps = 10 * bound;
      const auto res = run_execution(g, proto, d, random_pointers(g, seed),
                                     opt, stable(proto));
      ASSERT_TRUE(res.terminated) << "seed=" << seed;
      EXPECT_LE(res.convergence_steps(), bound) << "n=" << g.n();
    }
  }
}

TEST(MatchingTest, AsynchronousConvergenceWithinMoveBound) {
  // Section 3: 4n+2m moves under the unfair distributed daemon.
  const Graph g = make_random_connected(10, 0.35, 21);
  const MatchingProtocol proto;
  const std::int64_t bound = matching_ud_bound(g.n(), g.m());
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(std::make_unique<CentralRoundRobinDaemon>());
  daemons.push_back(std::make_unique<CentralMinIdDaemon>());
  daemons.push_back(std::make_unique<CentralMaxIdDaemon>());
  daemons.push_back(std::make_unique<RandomSubsetDaemon>(4));
  for (auto& d : daemons) {
    for (std::uint64_t seed = 40; seed < 44; ++seed) {
      RunOptions opt;
      opt.max_steps = 10 * bound;
      const auto res =
          run_execution(g, proto, *d, random_pointers(g, seed), opt,
                        stable(proto));
      ASSERT_TRUE(res.terminated) << d->name() << " seed=" << seed;
      EXPECT_LE(res.moves, bound) << d->name() << " seed=" << seed;
      EXPECT_TRUE(proto.is_maximal_matching(g, res.final_config));
    }
  }
}

TEST(MatchingTest, MatchedPairsExtraction) {
  const Graph g = make_path(4);
  const MatchingProtocol proto;
  const Config<PState> cfg{1, 0, 3, 2};
  const auto pairs = proto.matched_pairs(g, cfg);
  ASSERT_EQ(pairs.size(), 2u);
  EXPECT_EQ(pairs[0], (std::pair<VertexId, VertexId>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<VertexId, VertexId>{2, 3}));
  EXPECT_TRUE(proto.is_maximal_matching(g, cfg));
}

TEST(MatchingTest, NonMaximalDetected) {
  const Graph g = make_path(4);
  const MatchingProtocol proto;
  // Only 1-2 matched would be maximal; all-null is not.
  EXPECT_FALSE(
      proto.is_maximal_matching(g, MatchingProtocol::null_config(g)));
  const Config<PState> cfg{MatchingProtocol::kNull, 2, 1,
                           MatchingProtocol::kNull};
  EXPECT_TRUE(proto.is_maximal_matching(g, cfg));
}

}  // namespace
}  // namespace specstab
