// Tests for the Huang-Chen min+1 BFS construction (Section 3 example).
#include "baselines/min_plus_one.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

using MState = MinPlusOneProtocol::State;
using Legit = std::function<bool(const Graph&, const Config<MState>&)>;

Legit exact(const MinPlusOneProtocol& proto) {
  return [&proto](const Graph& g, const Config<MState>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

Config<MState> random_levels(VertexId n, MState cap, std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<MState> pick(0, cap);
  Config<MState> cfg(static_cast<std::size_t>(n));
  for (auto& s : cfg) s = pick(rng);
  return cfg;
}

TEST(MinPlusOneTest, ConstructionValidation) {
  EXPECT_THROW((void)MinPlusOneProtocol(make_path(3), 5),
               std::invalid_argument);
  Graph disconnected(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)MinPlusOneProtocol(disconnected), std::invalid_argument);
}

TEST(MinPlusOneTest, ExactLevelsAreBfsDistances) {
  const Graph g = make_grid(3, 3);
  const MinPlusOneProtocol proto(g);
  EXPECT_EQ(proto.exact_levels(), bfs_distances(g, 0));
  EXPECT_TRUE(proto.legitimate(g, proto.exact_levels()));
}

TEST(MinPlusOneTest, GuardsAndTargets) {
  const Graph g = make_path(3);
  const MinPlusOneProtocol proto(g);
  // Correct config: nobody enabled.
  EXPECT_FALSE(proto.enabled(g, Config<std::int32_t>{0, 1, 2}, 0));
  EXPECT_FALSE(proto.enabled(g, Config<std::int32_t>{0, 1, 2}, 1));
  EXPECT_FALSE(proto.enabled(g, Config<std::int32_t>{0, 1, 2}, 2));
  // Root drives to 0.
  EXPECT_TRUE(proto.enabled(g, Config<std::int32_t>{2, 1, 2}, 0));
  EXPECT_EQ(proto.apply(g, Config<std::int32_t>{2, 1, 2}, 0), 0);
  EXPECT_EQ(proto.rule_name(g, Config<std::int32_t>{2, 1, 2}, 0), "ROOT");
  // Interior drives to min+1.
  EXPECT_TRUE(proto.enabled(g, Config<std::int32_t>{0, 3, 2}, 1));
  EXPECT_EQ(proto.apply(g, Config<std::int32_t>{0, 3, 2}, 1), 1);
  EXPECT_EQ(proto.rule_name(g, Config<std::int32_t>{0, 3, 2}, 1), "MIN+1");
}

TEST(MinPlusOneTest, LevelsAreCapped) {
  const Graph g = make_path(3);
  const MinPlusOneProtocol proto(g);
  // All at cap: vertex 1's target is min(cap + 1, cap) = cap; vertex 2
  // likewise, so only the root is enabled.
  const Config<MState> cfg{3, 3, 3};
  EXPECT_TRUE(proto.enabled(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 1));
  EXPECT_FALSE(proto.enabled(g, cfg, 2));
}

TEST(MinPlusOneTest, SynchronousConvergenceWithinDiamPlusOne) {
  for (const Graph& g : {make_path(10), make_grid(4, 5), make_ring(9),
                         make_binary_tree(15), make_star(8)}) {
    const MinPlusOneProtocol proto(g);
    SynchronousDaemon d;
    const std::int64_t bound = min_plus_one_sync_theta(diameter(g));
    for (std::uint64_t seed = 0; seed < 8; ++seed) {
      RunOptions opt;
      opt.max_steps = 10 * (bound + 2);
      const auto res =
          run_execution(g, proto, d, random_levels(g.n(), g.n(), seed), opt,
                        exact(proto));
      ASSERT_TRUE(res.converged()) << "n=" << g.n() << " seed=" << seed;
      EXPECT_LE(res.convergence_steps(), bound)
          << "n=" << g.n() << " seed=" << seed;
      EXPECT_TRUE(res.terminated);  // silent protocol
    }
  }
}

TEST(MinPlusOneTest, ConvergesUnderAsynchronousSchedules) {
  const Graph g = make_grid(3, 4);
  const MinPlusOneProtocol proto(g);
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(std::make_unique<CentralRoundRobinDaemon>());
  daemons.push_back(std::make_unique<CentralMaxIdDaemon>());
  daemons.push_back(std::make_unique<DistributedBernoulliDaemon>(0.3, 17));
  for (auto& d : daemons) {
    RunOptions opt;
    opt.max_steps = 100000;
    const auto res = run_execution(
        g, proto, *d, random_levels(g.n(), g.n(), 5), opt, exact(proto));
    ASSERT_TRUE(res.converged()) << d->name();
    EXPECT_EQ(res.final_config, proto.exact_levels()) << d->name();
  }
}

TEST(MinPlusOneTest, ParentPointersFormBfsTree) {
  const Graph g = make_grid(3, 3);
  const MinPlusOneProtocol proto(g);
  const auto& levels = proto.exact_levels();
  EXPECT_EQ(proto.parent(g, levels, 0), -1);
  for (VertexId v = 1; v < g.n(); ++v) {
    const VertexId p = proto.parent(g, levels, v);
    ASSERT_GE(p, 0);
    EXPECT_TRUE(g.has_edge(v, p));
    EXPECT_EQ(levels[static_cast<std::size_t>(p)] + 1,
              levels[static_cast<std::size_t>(v)]);
  }
}

TEST(MinPlusOneTest, NonZeroRootSupported) {
  const Graph g = make_path(5);
  const MinPlusOneProtocol proto(g, 2);
  EXPECT_EQ(proto.exact_levels(), (Config<MState>{2, 1, 0, 1, 2}));
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 100;
  const auto res = run_execution(g, proto, d, Config<MState>{5, 5, 5, 5, 5},
                                 opt, exact(proto));
  EXPECT_TRUE(res.converged());
}

TEST(MinPlusOneTest, AdversarialCentralCostsMoreThanSync) {
  // The Section 3 speculation gap on one instance.
  const Graph g = make_path(16);
  const MinPlusOneProtocol proto(g);
  RunOptions opt;
  opt.max_steps = 1000000;

  // Worst adversarial-ish initial config: levels ascending away from the
  // far end so that corrections cascade one at a time.
  Config<MState> bad(16, 0);
  for (VertexId v = 0; v < 16; ++v) bad[static_cast<std::size_t>(v)] = 1;

  SynchronousDaemon sd;
  const auto sync = run_execution(g, proto, sd, bad, opt, exact(proto));
  CentralMaxIdDaemon lazy;
  const auto adv = run_execution(g, proto, lazy, bad, opt, exact(proto));
  ASSERT_TRUE(sync.converged());
  ASSERT_TRUE(adv.converged());
  EXPECT_GT(adv.convergence_steps(), sync.convergence_steps());
}

}  // namespace
}  // namespace specstab
