// Unit tests for the spec_ME monitor.
#include "core/mutex_spec.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace specstab {
namespace {

struct Fixture {
  Graph g = make_path(3);  // n=3, diam=2; privileged: 6, 10, 14
  SsmeProtocol proto = SsmeProtocol::for_graph(g);
};

TEST(MutexSpecMonitorTest, NoViolationOnSafeConfigs) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  m.on_action(0, {6, 5, 5}, {0});
  m.on_action(1, {7, 6, 5}, {1});
  m.finish(2, {7, 7, 6});
  EXPECT_EQ(m.report().last_safety_violation, -1);
  EXPECT_EQ(m.report().max_simultaneous_privileged, 1);
  EXPECT_EQ(m.report().configurations_seen, 3);
  EXPECT_EQ(m.report().stabilization_steps(), 0);
}

TEST(MutexSpecMonitorTest, ViolationDetectedAndIndexed) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  m.on_action(0, {6, 10, 0}, {2});   // two privileged: violation at 0
  m.on_action(1, {6, 0, 0}, {0});    // safe
  m.finish(2, {0, 0, 0});
  EXPECT_EQ(m.report().last_safety_violation, 0);
  EXPECT_EQ(m.report().max_simultaneous_privileged, 2);
  EXPECT_EQ(m.report().stabilization_steps(), 1);
}

TEST(MutexSpecMonitorTest, LastViolationWins) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  m.on_action(0, {6, 10, 0}, {0});
  m.on_action(1, {0, 0, 0}, {0});
  m.on_action(2, {6, 10, 14}, {0});  // three privileged at index 2
  m.finish(3, {0, 0, 0});
  EXPECT_EQ(m.report().last_safety_violation, 2);
  EXPECT_EQ(m.report().max_simultaneous_privileged, 3);
  EXPECT_EQ(m.report().stabilization_steps(), 3);
}

TEST(MutexSpecMonitorTest, ViolationInFinalConfigurationCounts) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  m.on_action(0, {0, 0, 0}, {0});
  m.finish(1, {6, 10, 0});
  EXPECT_EQ(m.report().last_safety_violation, 1);
}

TEST(MutexSpecMonitorTest, CriticalSectionRequiresPrivilegeAndActivation) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  // Vertex 0 privileged but NOT activated: no CS.
  m.on_action(0, {6, 5, 5}, {1});
  // Vertex 0 privileged AND activated: CS.
  m.on_action(1, {6, 6, 5}, {0, 2});
  // Vertex 2 activated but not privileged: no CS.
  m.finish(2, {7, 6, 6});
  EXPECT_EQ(m.report().cs_executions[0], 1);
  EXPECT_EQ(m.report().cs_executions[1], 0);
  EXPECT_EQ(m.report().cs_executions[2], 0);
  EXPECT_FALSE(m.report().liveness_at_least(1));
  EXPECT_EQ(m.report().min_cs_executions(), 0);
}

TEST(MutexSpecMonitorTest, LivenessThreshold) {
  Fixture f;
  MutexSpecMonitor m(f.g, f.proto);
  m.on_action(0, {6, 5, 5}, {0});
  m.on_action(1, {5, 10, 5}, {1});
  m.on_action(2, {5, 5, 14}, {2});
  m.finish(3, {5, 5, 5});
  EXPECT_TRUE(m.report().liveness_at_least(1));
  EXPECT_FALSE(m.report().liveness_at_least(2));
  EXPECT_EQ(m.report().min_cs_executions(), 1);
}

TEST(MutexSpecReportTest, EmptyReportDefaults) {
  MutexSpecReport r;
  EXPECT_EQ(r.stabilization_steps(), 0);
  EXPECT_FALSE(r.liveness_at_least(1));
  EXPECT_EQ(r.min_cs_executions(), 0);
}

}  // namespace
}  // namespace specstab
