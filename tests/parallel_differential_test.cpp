// Parallel-engine differential suite: the sharded parallel engine vs the
// incremental dirty-set engine (itself held byte-identical to the
// reference oracle by engine_differential_test).  The parallel engine's
// contract is *thread-count invariance*: the same RunResult — final
// configuration, every meter, the complete delta trace — at any
// `--threads` value, because shard boundaries only change which worker
// computes a delta, never the delta itself.
//
// This file carries the `parallel` ctest label: the TSan CI job builds
// with -fsanitize=thread and runs exactly this suite, so every test here
// doubles as a data-race probe.  The scenarios are therefore chosen to
// keep many shards busy: graphs big enough for 8–16 non-empty shards,
// dense synchronous steps (parallel staged apply + per-shard rescan) and
// sparse adversarial daemons (per-shard ball expansion with boundary
// fix-up), radius-2 guards whose balls straddle shard boundaries, and
// trace recording on top.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "baselines/matching.hpp"
#include "baselines/unbounded_unison.hpp"
#include "core/adversarial_configs.hpp"
#include "core/incremental_legitimacy.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/incremental_engine.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/protocol_registry.hpp"
#include "test_protocols.hpp"

namespace specstab {
namespace {

const std::vector<unsigned>& thread_axis() {
  static const std::vector<unsigned> threads = {1, 2, 3, 5, 8, 16};
  return threads;
}

const std::vector<std::string>& daemon_axis() {
  static const std::vector<std::string> daemons = {
      "synchronous", "central-rr", "bernoulli-0.5", "random-subset"};
  return daemons;
}

template <class State>
Config<State> uniform_config(const Graph& g, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> pick(lo, hi);
  Config<State> cfg(static_cast<std::size_t>(g.n()));
  for (auto& s : cfg) s = static_cast<State>(pick(rng));
  return cfg;
}

template <class State>
void expect_same_run(const RunResult<State>& a, const RunResult<State>& b,
                     const std::string& ctx) {
  ASSERT_EQ(a.final_config, b.final_config) << ctx;
  EXPECT_EQ(a.steps, b.steps) << ctx;
  EXPECT_EQ(a.moves, b.moves) << ctx;
  EXPECT_EQ(a.rounds, b.rounds) << ctx;
  EXPECT_EQ(a.terminated, b.terminated) << ctx;
  EXPECT_EQ(a.hit_step_cap, b.hit_step_cap) << ctx;
  EXPECT_EQ(a.first_legitimate, b.first_legitimate) << ctx;
  EXPECT_EQ(a.last_illegitimate, b.last_illegitimate) << ctx;
  EXPECT_EQ(a.moves_to_convergence, b.moves_to_convergence) << ctx;
  EXPECT_EQ(a.rounds_to_convergence, b.rounds_to_convergence) << ctx;
  EXPECT_TRUE(a.trace == b.trace) << ctx;
}

/// Runs the scenario on the incremental engine, then on the parallel
/// engine at every thread-axis value, asserting identical RunResults
/// (traces included — opt.record_trace is forced on).
template <ProtocolConcept P, class MakeChecker>
void expect_thread_invariant(const Graph& g, const P& proto,
                             const std::string& daemon_name,
                             std::uint64_t seed,
                             const Config<typename P::State>& init,
                             MakeChecker make_checker, RunOptions opt,
                             const std::string& context) {
  opt.record_trace = true;
  opt.engine = EngineKind::kIncremental;
  opt.threads = 1;
  auto base_daemon = make_daemon(daemon_name, seed);
  auto base_checker = make_checker();
  const auto base =
      run_with_engine(g, proto, *base_daemon, init, opt, base_checker);

  opt.engine = EngineKind::kParallel;
  for (const unsigned threads : thread_axis()) {
    opt.threads = threads;
    auto daemon = make_daemon(daemon_name, seed);
    auto checker = make_checker();
    const auto got = run_with_engine(g, proto, *daemon, init, opt, checker);
    expect_same_run(base, got,
                    context + " threads=" + std::to_string(threads));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(ParallelDifferential, UnisonManyShardsAllDaemons) {
  // Graphs with enough vertices that all 16 shards are non-empty and
  // radius-1 balls regularly straddle boundaries.
  std::vector<Graph> topologies;
  topologies.push_back(make_ring(96));
  topologies.push_back(make_torus(8, 9));
  topologies.push_back(make_random_connected(80, 0.06, 19));
  const UnboundedUnisonProtocol proto;
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const Graph& g = topologies[t];
    for (const auto& daemon_name : daemon_axis()) {
      for (std::uint64_t seed = 1; seed <= 12; ++seed) {
        RunOptions opt;
        opt.max_steps = 300;
        opt.steps_after_convergence = 0;
        expect_thread_invariant(
            g, proto, daemon_name, seed,
            uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed),
            [&] { return make_unbounded_unison_checker(proto); }, opt,
            "topology#" + std::to_string(t) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, TwoHopGuardsAcrossShardBoundaries) {
  // Radius-2 guards: a single activation near a shard boundary dirties
  // vertices two shards away, so the interior test (ball inside
  // [bounds[k], bounds[k+1])) rejects more activations and the
  // sequential fix-up path runs constantly.
  const TwoHopMaxProtocol proto(2);
  std::vector<Graph> topologies;
  topologies.push_back(make_ring(64));
  topologies.push_back(make_random_connected(48, 0.08, 7));
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const Graph& g = topologies[t];
    for (const auto& daemon_name : daemon_axis()) {
      for (std::uint64_t seed = 1; seed <= 8; ++seed) {
        RunOptions opt;
        opt.max_steps = 250;
        opt.steps_after_convergence = 0;
        expect_thread_invariant(
            g, proto, daemon_name, seed,
            uniform_config<std::int32_t>(g, 0, 40, seed),
            [] { return AlwaysLegitimate{}; }, opt,
            "topology#" + std::to_string(t) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, SsmeClosureAndLegitimacyMeters) {
  // The Gamma_1 incremental checker runs sequentially inside the
  // parallel engine; first_legitimate / last_illegitimate /
  // moves_to_convergence must match the incremental engine exactly.
  const Graph g = make_torus(6, 8);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  for (const auto& daemon_name : daemon_axis()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RunOptions opt;
      opt.max_steps = 400;
      expect_thread_invariant(
          g, proto, daemon_name, seed, random_config(g, proto.clock(), seed),
          [&] { return make_gamma1_checker(proto); }, opt,
          "daemon=" + daemon_name + " seed=" + std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelDifferential, MatchingPointerStates) {
  // Pointer-valued states with out-of-range garbage: exercises sparse
  // per-shard flip detection where guards read neighbor pointers.
  const Graph g = make_random_connected(60, 0.07, 23);
  const MatchingProtocol proto;
  for (const auto& daemon_name : daemon_axis()) {
    for (std::uint64_t seed = 1; seed <= 10; ++seed) {
      RunOptions opt;
      opt.max_steps = 400;
      opt.steps_after_convergence = 0;
      expect_thread_invariant(
          g, proto, daemon_name, seed,
          uniform_config<MatchingProtocol::State>(g, -3, g.n() + 2, seed),
          [&] { return make_matching_checker(proto); }, opt,
          "daemon=" + daemon_name + " seed=" + std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelDifferential, MoreThreadsThanVertices) {
  // threads=16 on a 5-vertex ring: most shards are empty ranges; the
  // engine must tolerate them (empty slices, zero-length scans).
  const Graph g = make_ring(5);
  const UnboundedUnisonProtocol proto;
  for (const auto& daemon_name : daemon_axis()) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      RunOptions opt;
      opt.max_steps = 120;
      opt.steps_after_convergence = 0;
      expect_thread_invariant(
          g, proto, daemon_name, seed,
          uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed),
          [&] { return make_unbounded_unison_checker(proto); }, opt,
          "daemon=" + daemon_name + " seed=" + std::to_string(seed));
      if (::testing::Test::HasFatalFailure()) return;
    }
  }
}

TEST(ParallelDifferential, WordBoundaryShardMisalignment) {
  // Shard boundaries snap to 64-vertex EnabledSet words, so ring sizes
  // straddling word boundaries (63/64/65/97/129/190) produce shards of
  // unequal word counts, trailing partial words, and — at high thread
  // counts — empty trailing shards.  The fused dense path (per-shard
  // SimdEval + disjoint mask-word writes + scatter prefix sums) must be
  // byte-identical through all of it.
  const UnboundedUnisonProtocol proto;
  for (const VertexId n : {63, 64, 65, 97, 129, 190}) {
    const Graph g = make_ring(n);
    for (const std::string daemon_name :
         {std::string("synchronous"), std::string("bernoulli-0.5")}) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        RunOptions opt;
        opt.max_steps = 200;
        opt.steps_after_convergence = 0;
        expect_thread_invariant(
            g, proto, daemon_name, seed,
            uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed),
            [&] { return make_unbounded_unison_checker(proto); }, opt,
            "n=" + std::to_string(n) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, GraphsSmallerThanOneShard) {
  // Word-aligned bounds mean any graph with n <= 64 lands entirely in
  // shard 0 and every other shard is an empty range, at every thread
  // count — the dense path must degenerate to the single-shard scan and
  // the sparse path must tolerate zero-work shards.
  const UnboundedUnisonProtocol proto;
  for (const VertexId n : {3, 17, 40, 63}) {
    const Graph g = make_ring(n);
    for (const auto& daemon_name : daemon_axis()) {
      for (std::uint64_t seed = 1; seed <= 4; ++seed) {
        RunOptions opt;
        opt.max_steps = 150;
        opt.steps_after_convergence = 0;
        expect_thread_invariant(
            g, proto, daemon_name, seed,
            uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed),
            [&] { return make_unbounded_unison_checker(proto); }, opt,
            "n=" + std::to_string(n) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, ScoredKernelPartialSumsAcrossShards) {
  // SSME's Gamma_1 checker consumes a whole-configuration score that the
  // fused dense path computes as per-shard int64 partial sums merged at
  // the barrier.  On graphs spanning several 64-vertex words, the
  // shard-ordered merge must reproduce the full-scan total bit-exactly —
  // first_legitimate / last_illegitimate hinge on it.
  for (const Graph& g : {make_ring(200), make_torus(10, 12)}) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    for (const std::string daemon_name :
         {std::string("synchronous"), std::string("bernoulli-0.5")}) {
      for (std::uint64_t seed = 1; seed <= 6; ++seed) {
        RunOptions opt;
        opt.max_steps = 300;
        expect_thread_invariant(
            g, proto, daemon_name, seed, random_config(g, proto.clock(), seed),
            [&] { return make_gamma1_checker(proto); }, opt,
            "n=" + std::to_string(g.n()) + " daemon=" + daemon_name +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, ExternalPoolReuseIsInvisible) {
  // RunOptions::pool hands the engine a caller-owned persistent
  // ShardPool (the campaign-runner / serve reuse path).  Reusing one
  // pool across many runs, at thread counts at and below the pool's
  // participant count, must be byte-identical to pool-less runs.
  const Graph g = make_ring(130);
  const UnboundedUnisonProtocol proto;
  ShardPool pool(7);  // 8 participants
  for (const std::string daemon_name :
       {std::string("synchronous"), std::string("random-subset")}) {
    for (std::uint64_t seed = 1; seed <= 6; ++seed) {
      RunOptions opt;
      opt.max_steps = 200;
      opt.steps_after_convergence = 0;
      opt.record_trace = true;
      opt.engine = EngineKind::kIncremental;
      opt.threads = 1;
      auto base_daemon = make_daemon(daemon_name, seed);
      auto base_checker = make_unbounded_unison_checker(proto);
      const auto init =
          uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed);
      const auto base =
          run_with_engine(g, proto, *base_daemon, init, opt, base_checker);

      opt.engine = EngineKind::kParallel;
      opt.pool = &pool;
      // threads > participants is clamped to the pool's size.
      for (const unsigned threads : {2u, 8u, 16u}) {
        opt.threads = threads;
        auto daemon = make_daemon(daemon_name, seed);
        auto checker = make_unbounded_unison_checker(proto);
        const auto got =
            run_with_engine(g, proto, *daemon, init, opt, checker);
        expect_same_run(base, got,
                        "pooled daemon=" + daemon_name + " seed=" +
                            std::to_string(seed) + " threads=" +
                            std::to_string(threads));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(ParallelDifferential, RegistrySessionDigestsThreadInvariant) {
  // Through the type-erased session API: printed states and FNV digests
  // must be identical at every thread count for every protocol.
  const auto& registry = ProtocolRegistry::instance();
  const Graph g = make_ring(24);
  const VertexId diam = 12;
  for (const auto& entry : registry.entries()) {
    SessionSpec spec;
    spec.daemon = "bernoulli-0.5";
    spec.seed = 4242;
    spec.engine = EngineKind::kParallel;
    spec.threads = 1;
    const SessionResult base = entry.run_on(g, diam, spec);
    for (const unsigned threads : {2u, 8u}) {
      spec.threads = threads;
      const SessionResult got = entry.run_on(g, diam, spec);
      const std::string ctx =
          entry.info.name + " threads=" + std::to_string(threads);
      ASSERT_EQ(got.final_state, base.final_state) << ctx;
      ASSERT_EQ(got.final_digest, base.final_digest) << ctx;
      EXPECT_EQ(got.steps, base.steps) << ctx;
      EXPECT_EQ(got.moves, base.moves) << ctx;
      EXPECT_EQ(got.rounds, base.rounds) << ctx;
      EXPECT_EQ(got.terminated, base.terminated) << ctx;
      EXPECT_EQ(got.converged, base.converged) << ctx;
      EXPECT_EQ(got.convergence_steps, base.convergence_steps) << ctx;
    }
  }
}

TEST(ParallelDifferential, ShardPoolSurvivesManySessions) {
  // Back-to-back sessions each construct and destroy a ShardPool; the
  // handshake (generation counter + pending countdown) must leave no
  // stuck workers behind.  Under TSan this also checks the join path.
  const Graph g = make_ring(40);
  const UnboundedUnisonProtocol proto;
  for (int rep = 0; rep < 20; ++rep) {
    RunOptions opt;
    opt.engine = EngineKind::kParallel;
    opt.threads = 8;
    opt.max_steps = 60;
    opt.steps_after_convergence = 0;
    auto daemon = make_daemon("bernoulli-0.5", 100 + rep);
    auto checker = make_unbounded_unison_checker(proto);
    const auto res = run_with_engine(
        g, proto, *daemon, uniform_config<UnboundedUnisonProtocol::State>(
                               g, -5, 20, 100 + rep),
        opt, checker);
    EXPECT_GT(res.steps, 0) << "rep=" << rep;
  }
}

}  // namespace
}  // namespace specstab
