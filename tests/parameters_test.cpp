// Tests for exact unison parameter computation, including end-to-end runs
// with MINIMAL parameters and negative tests showing the constraints are
// not vacuous.
#include "unison/parameters.hpp"

#include <gtest/gtest.h>

#include <functional>

#include "core/adversarial_configs.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "unison/unison.hpp"
#include "unison/unison_spec.hpp"

namespace specstab {
namespace {

TEST(UnisonParametersTest, MinimalValuesPerFamily) {
  // Ring: hole = n, cyclo = n -> alpha = n-2, K = n+1.
  const auto ring = minimal_unison_parameters(make_ring(9));
  EXPECT_EQ(ring.alpha, 7);
  EXPECT_EQ(ring.k, 10);
  // Tree: hole = cyclo = 2 -> alpha = 1 (clamped), K = 3.
  const auto tree = minimal_unison_parameters(make_binary_tree(7));
  EXPECT_EQ(tree.alpha, 1);
  EXPECT_EQ(tree.k, 3);
  // Complete graph: hole = 3, cyclo = 3 -> alpha = 1, K = 4.
  const auto complete = minimal_unison_parameters(make_complete(5));
  EXPECT_EQ(complete.alpha, 1);
  EXPECT_EQ(complete.k, 4);
  // Grid: hole = boundary cycle, cyclo = 4.
  const auto grid = minimal_unison_parameters(make_grid(3, 3));
  EXPECT_EQ(grid.hole, 8);
  EXPECT_EQ(grid.alpha, 6);
  EXPECT_EQ(grid.k, 5);
}

TEST(UnisonParametersTest, ValidationAgainstExactTopology) {
  const Graph g = make_ring(7);  // hole 7, cyclo 7
  EXPECT_TRUE(validate_unison_parameters(g, 5, 8));
  EXPECT_FALSE(validate_unison_parameters(g, 4, 8));  // alpha < hole-2
  EXPECT_FALSE(validate_unison_parameters(g, 5, 7));  // K = cyclo
  EXPECT_FALSE(validate_unison_parameters(g, 0, 8));
  EXPECT_FALSE(validate_unison_parameters(g, 5, 1));
}

TEST(UnisonParametersTest, SufficientImpliesValid) {
  for (const Graph& g : {make_ring(8), make_grid(3, 3), make_petersen(),
                         make_complete(6), make_binary_tree(7)}) {
    const ClockValue alpha = g.n();
    const ClockValue k = g.n() + 1;
    ASSERT_TRUE(sufficient_unison_parameters(g, alpha, k));
    EXPECT_TRUE(validate_unison_parameters(g, alpha, k)) << g.n();
  }
}

TEST(UnisonParametersTest, MinimalParametersStabilizeOnRing) {
  // End-to-end: the unison with EXACT minimal parameters stabilizes and
  // keeps incrementing (much smaller clocks than SSME's generic choice).
  const Graph g = make_ring(6);
  const auto p = minimal_unison_parameters(g);  // alpha=4, K=7
  const UnisonProtocol proto(CherryClock(p.alpha, p.k));
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 300;
  opt.record_trace = true;
  const auto init = random_config(g, proto.clock(), 13);
  const auto res = run_execution(g, proto, d, init, opt);
  const auto rep = check_unison_spec(g, proto, res.trace.materialize());
  EXPECT_GE(rep.min_increments(), 1);
  EXPECT_LT(rep.stabilization_steps(), 300);
  EXPECT_TRUE(proto.legitimate(g, res.final_config));
}

TEST(UnisonParametersTest, MinimalParametersStabilizeUnderCentralDaemon) {
  const Graph g = make_grid(3, 3);
  const auto p = minimal_unison_parameters(g);
  const UnisonProtocol proto(CherryClock(p.alpha, p.k));
  CentralRoundRobinDaemon d;
  RunOptions opt;
  opt.max_steps = 100000;
  opt.steps_after_convergence = 0;
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  const auto res = run_execution(
      g, proto, d, random_config(g, proto.clock(), 3), opt, legit);
  EXPECT_TRUE(res.converged());
}

TEST(UnisonParametersTest, TooSmallKCanDeadlockLiveness) {
  // NEGATIVE: on a ring with K = cyclo(g) = n (violating K > cyclo), the
  // evenly-spread configuration 0,1,2,..,n-1 is in Gamma_1 but NO vertex
  // is ever enabled: every vertex has a neighbour exactly one behind, so
  // no one is a local minimum -> liveness dies.  This is exactly why the
  // paper requires K > cyclo(g).
  const VertexId n = 6;
  const Graph g = make_ring(n);
  const UnisonProtocol proto(CherryClock(n - 2, n));  // K = n = cyclo: BAD
  Config<ClockValue> spread(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) spread[static_cast<std::size_t>(v)] = v;
  ASSERT_TRUE(proto.legitimate(g, spread));  // drift 1 everywhere
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 100;
  const auto res = run_execution(g, proto, d, spread, opt);
  EXPECT_TRUE(res.terminated);  // deadlock: nobody enabled
  EXPECT_EQ(res.steps, 0);
}

TEST(UnisonParametersTest, PaperKIsStrictlyAboveDeadlockThreshold) {
  // With the paper's K > cyclo the spread configuration above is not even
  // constructible as a closed loop: some vertex must be a local minimum.
  const VertexId n = 6;
  const Graph g = make_ring(n);
  const UnisonProtocol proto(CherryClock(n, n + 1));  // K = n+1 > cyclo
  Config<ClockValue> spread(static_cast<std::size_t>(n));
  for (VertexId v = 0; v < n; ++v) spread[static_cast<std::size_t>(v)] = v;
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 100;
  const auto res = run_execution(g, proto, d, spread, opt);
  EXPECT_FALSE(res.terminated);  // the unison keeps ticking
  EXPECT_TRUE(res.hit_step_cap);
}

}  // namespace
}  // namespace specstab
