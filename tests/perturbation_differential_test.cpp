// Perturbation differential suite: fault-injected runs must stay
// byte-identical — final configuration, every meter, the recovery
// distribution, and the complete delta trace with its perturbation
// records — across all four engines, both layouts, and every thread
// count.  The FaultPlan draws every victim and corrupted value from its
// own seeded stream, so engine-side data structures can never leak into
// the schedule; this suite is the check that holds that contract.
//
// This file carries the `perturb` ctest label: the CI perturbation job
// runs exactly this suite (plus fault_plan_test) under ASan/UBSan and
// again under TSan, so the multi-thread legs double as race probes on
// the parallel engine's sequential fault hook.
#include <gtest/gtest.h>

#include <cstdlib>
#include <random>
#include <string>
#include <vector>

#include "baselines/unbounded_unison.hpp"
#include "campaign/artifacts.hpp"
#include "campaign/runner.hpp"
#include "campaign/stats.hpp"
#include "core/adversarial_configs.hpp"
#include "core/incremental_legitimacy.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/fault_plan.hpp"
#include "sim/incremental_engine.hpp"
#include "sim/parallel_engine.hpp"
#include "sim/protocol_registry.hpp"

namespace specstab {
namespace {

/// Seeds per (topology, daemon, fault-kind) cell; the nightly deep
/// differential job enlarges it via SPECSTAB_PERTURB_SEEDS.
std::size_t perturb_seeds() {
  if (const char* env = std::getenv("SPECSTAB_PERTURB_SEEDS")) {
    const long parsed = std::strtol(env, nullptr, 10);
    if (parsed > 0) return static_cast<std::size_t>(parsed);
  }
  return 4;
}

const std::vector<std::string>& fault_axis() {
  static const std::vector<std::string> faults = {
      "periodic:period=12;k=3;epochs=3;start=8",
      "burst:period=15;k=5;epochs=3;start=10",
      "adversarial:period=20;k=2;epochs=2;start=6",
  };
  return faults;
}

template <class State>
Config<State> uniform_config(const Graph& g, std::int64_t lo, std::int64_t hi,
                             std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<std::int64_t> pick(lo, hi);
  Config<State> cfg(static_cast<std::size_t>(g.n()));
  for (auto& s : cfg) s = static_cast<State>(pick(rng));
  return cfg;
}

template <class State>
void expect_same_run(const RunResult<State>& a, const RunResult<State>& b,
                     const std::string& ctx) {
  ASSERT_EQ(a.final_config, b.final_config) << ctx;
  EXPECT_EQ(a.steps, b.steps) << ctx;
  EXPECT_EQ(a.moves, b.moves) << ctx;
  EXPECT_EQ(a.rounds, b.rounds) << ctx;
  EXPECT_EQ(a.terminated, b.terminated) << ctx;
  EXPECT_EQ(a.hit_step_cap, b.hit_step_cap) << ctx;
  EXPECT_EQ(a.first_legitimate, b.first_legitimate) << ctx;
  EXPECT_EQ(a.last_illegitimate, b.last_illegitimate) << ctx;
  EXPECT_EQ(a.moves_to_convergence, b.moves_to_convergence) << ctx;
  EXPECT_EQ(a.rounds_to_convergence, b.rounds_to_convergence) << ctx;
  EXPECT_EQ(a.perturb, b.perturb) << ctx;
  EXPECT_TRUE(a.trace == b.trace) << ctx;
}

/// Runs one perturbed scenario on the reference oracle, then on every
/// other engine × layout (threads {1, 2, 8} for the parallel engine),
/// asserting identical RunResults with traces and recovery stats.
template <ProtocolConcept P, class MakeChecker, class Pool>
void expect_perturbation_invariant(const Graph& g, const P& proto,
                                   const std::string& daemon_name,
                                   std::uint64_t seed,
                                   const Config<typename P::State>& init,
                                   MakeChecker make_checker, Pool pool,
                                   const FaultSpec& fault, RunOptions opt,
                                   const std::string& context) {
  using State = typename P::State;
  opt.record_trace = true;
  const auto guard = [&proto](const Graph& gg, const ConfigView<State>& cv,
                              VertexId v) { return proto.enabled(gg, cv, v); };
  const auto run = [&](EngineKind engine, ConfigLayout layout,
                       unsigned threads) {
    RunOptions o = opt;
    o.engine = engine;
    o.layout = layout;
    o.threads = threads;
    auto daemon = make_daemon(daemon_name, seed);
    auto checker = make_checker();
    FaultPlan<State> plan(fault, seed, 2, pool, guard);
    return run_with_engine(g, proto, *daemon, init, o, checker, nullptr,
                           &plan);
  };

  const auto base = run(EngineKind::kReference, ConfigLayout::kAoS, 1);
  // Stall-fire guarantees every epoch fires even when the protocol
  // terminates early; a shortfall here means the schedule itself broke.
  ASSERT_EQ(base.perturb.epochs_fired, fault.epochs) << context;

  struct Combo {
    EngineKind engine;
    ConfigLayout layout;
    unsigned threads;
  };
  const Combo combos[] = {
      {EngineKind::kReference, ConfigLayout::kSoA, 1},
      {EngineKind::kIncremental, ConfigLayout::kAoS, 1},
      {EngineKind::kIncremental, ConfigLayout::kSoA, 1},
      {EngineKind::kVector, ConfigLayout::kAuto, 1},
      {EngineKind::kParallel, ConfigLayout::kAuto, 1},
      {EngineKind::kParallel, ConfigLayout::kAoS, 2},
      {EngineKind::kParallel, ConfigLayout::kSoA, 8},
  };
  for (const Combo& c : combos) {
    const auto got = run(c.engine, c.layout, c.threads);
    expect_same_run(base, got,
                    context + " engine=" +
                        std::string(engine_name(c.engine)) + " layout=" +
                        std::string(config_layout_name(c.layout)) +
                        " threads=" + std::to_string(c.threads));
    if (::testing::Test::HasFatalFailure()) return;
  }
}

TEST(PerturbationDifferential, UnisonAllKindsEnginesAndLayouts) {
  std::vector<Graph> topologies;
  topologies.push_back(make_ring(48));
  topologies.push_back(make_random_connected(40, 0.08, 5));
  const UnboundedUnisonProtocol proto;
  for (std::size_t t = 0; t < topologies.size(); ++t) {
    const Graph& g = topologies[t];
    const auto pool = [&g](std::uint64_t s) {
      return uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, s);
    };
    for (const std::string& daemon_name :
         {std::string("synchronous"), std::string("central-rr"),
          std::string("bernoulli-0.5")}) {
      for (const std::string& fault_text : fault_axis()) {
        const FaultSpec fault = FaultSpec::parse(fault_text);
        for (std::uint64_t seed = 1; seed <= perturb_seeds(); ++seed) {
          RunOptions opt;
          opt.max_steps = 400;
          opt.steps_after_convergence = 0;
          expect_perturbation_invariant(
              g, proto, daemon_name, seed,
              uniform_config<UnboundedUnisonProtocol::State>(g, -5, 20, seed),
              [&] { return make_unbounded_unison_checker(proto); }, pool,
              fault, opt,
              "topology#" + std::to_string(t) + " daemon=" + daemon_name +
                  " fault=" + fault_text + " seed=" + std::to_string(seed));
          if (::testing::Test::HasFatalFailure()) return;
        }
      }
    }
  }
}

TEST(PerturbationDifferential, SsmeRecoveryMetersAcrossEngines) {
  // The Gamma_1 checker must be refreshed after every corruption; a
  // stale cached score would skew first_legitimate / recovery_steps on
  // exactly one engine and fail the cross-engine comparison here.
  const Graph g = make_torus(5, 6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto pool = [&g, &proto](std::uint64_t s) {
    return random_config(g, proto.clock(), s);
  };
  for (const std::string& daemon_name :
       {std::string("synchronous"), std::string("bernoulli-0.5")}) {
    for (const std::string& fault_text : fault_axis()) {
      const FaultSpec fault = FaultSpec::parse(fault_text);
      for (std::uint64_t seed = 1; seed <= perturb_seeds(); ++seed) {
        RunOptions opt;
        opt.max_steps = 600;
        opt.steps_after_convergence = 0;
        expect_perturbation_invariant(
            g, proto, daemon_name, seed, random_config(g, proto.clock(), seed),
            [&] { return make_gamma1_checker(proto); }, pool, fault, opt,
            "daemon=" + daemon_name + " fault=" + fault_text +
                " seed=" + std::to_string(seed));
        if (::testing::Test::HasFatalFailure()) return;
      }
    }
  }
}

TEST(PerturbationDifferential, RegistrySessionsAgreeForEveryProtocol) {
  // Through the type-erased session API: every registered protocol, all
  // four engines, multi-threaded parallel legs.  Digests, meters,
  // recovery stats and service stalls must match byte for byte.
  const auto& registry = ProtocolRegistry::instance();
  const Graph g = make_ring(24);
  const VertexId diam = 12;
  for (const auto& entry : registry.entries()) {
    SessionSpec spec;
    spec.daemon = "bernoulli-0.5";
    spec.seed = 4242;
    spec.perturb = "periodic:period=6;k=3;epochs=3";
    spec.engine = EngineKind::kReference;
    const SessionResult base = entry.run_on(g, diam, spec);
    EXPECT_EQ(base.perturb, "periodic:period=6;k=3;epochs=3;start=6")
        << entry.info.name;
    EXPECT_EQ(base.perturb_epochs, 3) << entry.info.name;

    struct Leg {
      EngineKind engine;
      unsigned threads;
    };
    const Leg legs[] = {{EngineKind::kIncremental, 1},
                        {EngineKind::kVector, 1},
                        {EngineKind::kParallel, 1},
                        {EngineKind::kParallel, 8}};
    for (const Leg& leg : legs) {
      spec.engine = leg.engine;
      spec.threads = leg.threads;
      const SessionResult got = entry.run_on(g, diam, spec);
      const std::string ctx = entry.info.name + " engine=" +
                              std::string(engine_name(leg.engine)) +
                              " threads=" + std::to_string(leg.threads);
      ASSERT_EQ(got.final_state, base.final_state) << ctx;
      ASSERT_EQ(got.final_digest, base.final_digest) << ctx;
      EXPECT_EQ(got.steps, base.steps) << ctx;
      EXPECT_EQ(got.moves, base.moves) << ctx;
      EXPECT_EQ(got.rounds, base.rounds) << ctx;
      EXPECT_EQ(got.converged, base.converged) << ctx;
      EXPECT_EQ(got.convergence_steps, base.convergence_steps) << ctx;
      EXPECT_EQ(got.closure_violations, base.closure_violations) << ctx;
      EXPECT_EQ(got.perturb, base.perturb) << ctx;
      EXPECT_EQ(got.perturb_epochs, base.perturb_epochs) << ctx;
      EXPECT_EQ(got.perturb_unrecovered, base.perturb_unrecovered) << ctx;
      EXPECT_EQ(got.perturb_fire_steps, base.perturb_fire_steps) << ctx;
      EXPECT_EQ(got.recovery_steps, base.recovery_steps) << ctx;
      EXPECT_EQ(got.service_stalls, base.service_stalls) << ctx;
      EXPECT_EQ(got.notes, base.notes) << ctx;
    }
  }
}

TEST(PerturbationDifferential, RegistryTracesCarryIdenticalPerturbations) {
  // Delta traces replay corrupted configurations too; the materialized
  // trace (every gamma_i rendered per vertex) must agree between the
  // incremental engine and the parallel engine at 8 threads.
  const auto& registry = ProtocolRegistry::instance();
  const auto* entry = registry.find("ssme");
  ASSERT_NE(entry, nullptr);
  const Graph g = make_ring(16);
  SessionSpec spec;
  spec.daemon = "synchronous";
  spec.seed = 99;
  spec.perturb = "burst:period=10;k=4;epochs=2;start=5";
  spec.record_trace = true;
  spec.engine = EngineKind::kIncremental;
  const SessionResult a = entry->run_on(g, 8, spec);
  spec.engine = EngineKind::kParallel;
  spec.threads = 8;
  const SessionResult b = entry->run_on(g, 8, spec);
  ASSERT_EQ(a.trace_length, b.trace_length);
  EXPECT_GT(a.trace_length, 0);
  EXPECT_EQ(a.trace_materialize(), b.trace_materialize());
}

TEST(PerturbationDifferential, PerturbedCampaignArtifactsThreadInvariant) {
  // The full campaign path: a grid with a perturb axis must emit
  // byte-identical JSON and CSV artifacts at 1 and 8 worker threads,
  // and the perturbed cells must actually have fired their epochs.
  campaign::CampaignGrid grid;
  grid.protocols = {"ssme", "min-plus-one"};
  grid.topologies = {{"ring", 8}, {"ring", 12}};
  grid.daemons = {"synchronous", "central-rr"};
  grid.inits = {"random"};
  grid.reps = 2;
  grid.base_seed = 77;
  grid.perturbs = {"none", "periodic:period=6;k=2;epochs=2",
                   "burst:period=8;k=3;epochs=2"};

  const auto serial = campaign::run_campaign(grid, {.threads = 1});
  const auto parallel = campaign::run_campaign(grid, {.threads = 8});
  EXPECT_EQ(campaign::to_json(serial, campaign::aggregate(serial)),
            campaign::to_json(parallel, campaign::aggregate(parallel)));
  EXPECT_EQ(campaign::cells_to_csv(campaign::aggregate(serial)),
            campaign::cells_to_csv(campaign::aggregate(parallel)));
  EXPECT_EQ(campaign::runs_to_csv(serial), campaign::runs_to_csv(parallel));

  const auto cells = campaign::aggregate(serial);
  std::size_t perturbed_cells = 0;
  for (const auto& cell : cells) {
    if (cell.perturb == "none") {
      EXPECT_EQ(cell.perturb_epochs, 0) << cell.protocol;
      continue;
    }
    ++perturbed_cells;
    // 2 epochs per run x 2 reps.
    EXPECT_EQ(cell.perturb_epochs, 4) << cell.protocol << " " << cell.perturb;
  }
  EXPECT_EQ(perturbed_cells, cells.size() * 2 / 3);
  const auto csv = campaign::cells_to_csv(cells);
  EXPECT_NE(csv.find("periodic:period=6;k=2;epochs=2;start=6"),
            std::string::npos);
}

}  // namespace
}  // namespace specstab
