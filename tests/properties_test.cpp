// Unit tests for metric graph properties.
#include "graph/properties.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"

namespace specstab {
namespace {

TEST(PropertiesTest, BfsDistancesOnPath) {
  const Graph g = make_path(5);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d, (std::vector<VertexId>{0, 1, 2, 3, 4}));
  const auto d2 = bfs_distances(g, 2);
  EXPECT_EQ(d2, (std::vector<VertexId>{2, 1, 0, 1, 2}));
}

TEST(PropertiesTest, UnreachableIsMinusOne) {
  Graph g(3);
  g.add_edge(0, 1);
  const auto d = bfs_distances(g, 0);
  EXPECT_EQ(d[2], -1);
  EXPECT_THROW((void)distance(g, 0, 2), std::invalid_argument);
}

TEST(PropertiesTest, DiameterOfFamilies) {
  EXPECT_EQ(diameter(make_path(10)), 9);
  EXPECT_EQ(diameter(make_ring(10)), 5);
  EXPECT_EQ(diameter(make_ring(11)), 5);
  EXPECT_EQ(diameter(make_star(9)), 2);
  EXPECT_EQ(diameter(make_complete(5)), 1);
  EXPECT_EQ(diameter(make_grid(4, 6)), 8);
  EXPECT_EQ(diameter(make_hypercube(5)), 5);
  EXPECT_EQ(diameter(Graph(1)), 0);
}

TEST(PropertiesTest, RadiusOfFamilies) {
  EXPECT_EQ(radius(make_path(9)), 4);   // centre of P9
  EXPECT_EQ(radius(make_star(9)), 1);   // hub
  EXPECT_EQ(radius(make_ring(10)), 5);  // vertex-transitive
}

TEST(PropertiesTest, EccentricityOnPath) {
  const Graph g = make_path(7);
  EXPECT_EQ(eccentricity(g, 0), 6);
  EXPECT_EQ(eccentricity(g, 3), 3);
}

TEST(PropertiesTest, DiameterPairRealisesDiameter) {
  for (const Graph& g :
       {make_path(8), make_ring(9), make_grid(3, 5), make_binary_tree(15)}) {
    const auto [u, v] = diameter_pair(g);
    EXPECT_EQ(distance(g, u, v), diameter(g));
  }
}

TEST(PropertiesTest, AllPairsMatchesSingleSource) {
  const Graph g = make_grid(3, 3);
  const auto apd = all_pairs_distances(g);
  for (VertexId u = 0; u < g.n(); ++u) {
    EXPECT_EQ(apd[static_cast<std::size_t>(u)], bfs_distances(g, u));
  }
}

TEST(PropertiesTest, Girth) {
  EXPECT_EQ(girth(make_ring(8)), 8);
  EXPECT_EQ(girth(make_complete(4)), 3);
  EXPECT_EQ(girth(make_path(5)), -1);  // acyclic
  EXPECT_EQ(girth(make_grid(2, 2)), 4);
  EXPECT_EQ(girth(make_petersen()), 5);
  EXPECT_EQ(girth(make_hypercube(3)), 4);
}

TEST(PropertiesTest, Bipartiteness) {
  EXPECT_TRUE(is_bipartite(make_ring(8)));
  EXPECT_FALSE(is_bipartite(make_ring(9)));
  EXPECT_TRUE(is_bipartite(make_path(5)));
  EXPECT_TRUE(is_bipartite(make_grid(4, 4)));
  EXPECT_FALSE(is_bipartite(make_complete(3)));
  EXPECT_FALSE(is_bipartite(make_petersen()));
}

TEST(PropertiesTest, TreeRecognition) {
  EXPECT_TRUE(is_tree(make_path(6)));
  EXPECT_TRUE(is_tree(make_star(6)));
  EXPECT_FALSE(is_tree(make_ring(6)));
  Graph forest(4, {{0, 1}, {2, 3}});
  EXPECT_FALSE(is_tree(forest));  // disconnected
}

TEST(PropertiesTest, CycleSpaceDimension) {
  EXPECT_EQ(cycle_space_dimension(make_path(5)), 0);
  EXPECT_EQ(cycle_space_dimension(make_ring(5)), 1);
  EXPECT_EQ(cycle_space_dimension(make_complete(4)), 3);  // 6 - 4 + 1
  EXPECT_EQ(cycle_space_dimension(make_grid(3, 3)), 4);
  Graph forest(4, {{0, 1}, {2, 3}});
  EXPECT_EQ(cycle_space_dimension(forest), 0);  // 2 - 4 + 2
}

}  // namespace
}  // namespace specstab
