// Parameterized property sweeps (TEST_P) over topology families, seeds,
// and daemons: the invariants behind the paper's proofs, checked at scale.
#include <gtest/gtest.h>

#include <functional>
#include <memory>
#include <string>
#include <tuple>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

// ---------------------------------------------------------------------
// Topology factory shared by the sweeps.
// ---------------------------------------------------------------------
struct TopologySpec {
  std::string name;
  Graph graph;
};

std::vector<TopologySpec> sweep_topologies() {
  return {
      {"ring8", make_ring(8)},
      {"ring11", make_ring(11)},
      {"path9", make_path(9)},
      {"grid3x4", make_grid(3, 4)},
      {"star7", make_star(7)},
      {"btree15", make_binary_tree(15)},
      {"petersen", make_petersen()},
      {"hypercube3", make_hypercube(3)},
      {"complete6", make_complete(6)},
      {"wheel7", make_wheel(7)},
      {"lollipop4p3", make_lollipop(4, 3)},
      {"random10", make_random_connected(10, 0.3, 77)},
  };
}

// ---------------------------------------------------------------------
// Property 1 (Theorem 2 sweep): synchronous stabilization of spec_ME
// safety within ceil(diam/2) steps from random and crafted configs.
// ---------------------------------------------------------------------
class SyncBoundSweep
    : public ::testing::TestWithParam<std::tuple<int, std::uint64_t>> {};

TEST_P(SyncBoundSweep, SafetyStabilizesWithinCeilHalfDiam) {
  const auto topologies = sweep_topologies();
  const auto& spec =
      topologies[static_cast<std::size_t>(std::get<0>(GetParam()))];
  const std::uint64_t seed = std::get<1>(GetParam());

  const Graph& g = spec.graph;
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * (proto.params().n + proto.params().k);
  const std::function<bool(const Graph&, const Config<ClockValue>&)> safe =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.mutex_safe(gg, c);
      };
  const auto init = (seed % 3 == 0)
                        ? two_gradient_config(g, proto)
                        : random_config(g, proto.clock(), seed * 7919);
  const auto res = run_execution(g, proto, d, init, opt, safe);
  ASSERT_TRUE(res.converged()) << spec.name;
  EXPECT_LE(res.convergence_steps(), ssme_sync_bound(proto.params().diam))
      << spec.name << " seed=" << seed;
}

INSTANTIATE_TEST_SUITE_P(
    AllTopologies, SyncBoundSweep,
    ::testing::Combine(::testing::Range(0, 12),
                       ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u)),
    [](const ::testing::TestParamInfo<std::tuple<int, std::uint64_t>>& info) {
      return sweep_topologies()[static_cast<std::size_t>(
                                    std::get<0>(info.param))]
                 .name +
             "_seed" + std::to_string(std::get<1>(info.param));
    });

// ---------------------------------------------------------------------
// Property 2 (Theorem 1 sweep): under asynchronous daemons SSME reaches
// Gamma_1, which is closed, and safety holds inside it.
// ---------------------------------------------------------------------
class AsyncStabilizationSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

std::unique_ptr<Daemon> sweep_daemon(int which, std::uint64_t seed) {
  switch (which) {
    case 0: return std::make_unique<CentralRoundRobinDaemon>();
    case 1: return std::make_unique<CentralRandomDaemon>(seed);
    case 2: return std::make_unique<CentralMinIdDaemon>();
    case 3: return std::make_unique<CentralMaxIdDaemon>();
    case 4: return std::make_unique<DistributedBernoulliDaemon>(0.5, seed);
    default: return std::make_unique<RandomSubsetDaemon>(seed);
  }
}

TEST_P(AsyncStabilizationSweep, ReachesGammaOneAndStaysSafe) {
  const auto topologies = sweep_topologies();
  const auto& spec =
      topologies[static_cast<std::size_t>(std::get<0>(GetParam())) % 6];
  const int daemon_idx = std::get<1>(GetParam());

  const Graph& g = spec.graph;
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  auto d = sweep_daemon(daemon_idx, 1000 + static_cast<std::uint64_t>(daemon_idx));
  RunOptions opt;
  opt.max_steps = 400000;
  opt.steps_after_convergence = 2 * proto.params().k;
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  const auto init = random_config(g, proto.clock(), 0xc0ffee + spec.graph.n());
  const auto res = run_execution(g, proto, *d, init, opt, legit);
  ASSERT_TRUE(res.converged()) << spec.name << " " << d->name();
  EXPECT_TRUE(proto.legitimate(g, res.final_config));
  EXPECT_TRUE(proto.mutex_safe(g, res.final_config));
  EXPECT_LE(res.convergence_steps(),
            ssme_ud_bound(proto.params().n, proto.params().diam))
      << spec.name << " " << d->name();
}

INSTANTIATE_TEST_SUITE_P(DaemonsByTopology, AsyncStabilizationSweep,
                         ::testing::Combine(::testing::Range(0, 6),
                                            ::testing::Range(0, 6)));

// ---------------------------------------------------------------------
// Property 3 (Lemma machinery): privileged values sit strictly inside
// stab and pairwise further than diam apart on every sweep topology.
// ---------------------------------------------------------------------
class PrivilegedValueSweep : public ::testing::TestWithParam<int> {};

TEST_P(PrivilegedValueSweep, SpacingInvariants) {
  const auto topologies = sweep_topologies();
  const auto& spec = topologies[static_cast<std::size_t>(GetParam())];
  const SsmeParams p = SsmeParams::for_graph(spec.graph);
  const CherryClock clock = p.make_clock();
  for (VertexId a = 0; a < p.n; ++a) {
    const ClockValue pa = p.privileged_value(a);
    EXPECT_TRUE(clock.in_stab(pa));
    EXPECT_GT(clock.ring_distance(pa, 0), p.diam)
        << spec.name << " id=" << a;  // Lemma 2's zero-island argument
    for (VertexId b = a + 1; b < p.n; ++b) {
      EXPECT_GT(clock.ring_distance(pa, p.privileged_value(b)), p.diam)
          << spec.name;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, PrivilegedValueSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Property 4: determinism — same graph, same daemon, same seed, same
// initial configuration => identical executions.
// ---------------------------------------------------------------------
class DeterminismSweep : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismSweep, RunsAreReproducible) {
  const auto topologies = sweep_topologies();
  const auto& spec = topologies[static_cast<std::size_t>(GetParam())];
  const Graph& g = spec.graph;
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto init = random_config(g, proto.clock(), 4242);
  RunOptions opt;
  opt.max_steps = 300;
  opt.record_trace = true;

  DistributedBernoulliDaemon d1(0.5, 9);
  DistributedBernoulliDaemon d2(0.5, 9);
  const auto r1 = run_execution(g, proto, d1, init, opt);
  const auto r2 = run_execution(g, proto, d2, init, opt);
  EXPECT_EQ(r1.trace, r2.trace) << spec.name;
  EXPECT_EQ(r1.moves, r2.moves);
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, DeterminismSweep,
                         ::testing::Range(0, 12));

// ---------------------------------------------------------------------
// Property 5: the zero configuration is legitimate everywhere and the
// execution from it never violates safety (closure from a clean start).
// ---------------------------------------------------------------------
class CleanStartSweep : public ::testing::TestWithParam<int> {};

TEST_P(CleanStartSweep, ZeroConfigStaysSafeForever) {
  const auto topologies = sweep_topologies();
  const auto& spec = topologies[static_cast<std::size_t>(GetParam())];
  const Graph& g = spec.graph;
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 2 * proto.params().k + 10;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d, zero_config(g), opt);
  for (const auto& cfg : res.trace) {
    ASSERT_TRUE(proto.legitimate(g, cfg)) << spec.name;
    ASSERT_TRUE(proto.mutex_safe(g, cfg)) << spec.name;
  }
}

INSTANTIATE_TEST_SUITE_P(AllTopologies, CleanStartSweep,
                         ::testing::Range(0, 12));

}  // namespace
}  // namespace specstab
