// Protocol-registry coverage: metadata of every registered protocol, the
// type-erased session API against an independently hand-rolled typed
// pipeline (byte-identical final configurations and meters), engine
// agreement through the erased boundary, init validation, and the
// delta-trace exposure of the session API.
#include "sim/protocol_registry.hpp"

#include <gtest/gtest.h>

#include <set>
#include <string>
#include <vector>

#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/any_protocol.hpp"

namespace specstab {
namespace {

/// Independently re-rolled typed pipeline: the same building blocks the
/// traits expose, but driven through run_with_engine() directly — no
/// std::function, no SessionResult flattening.  The erased path must
/// reproduce this bit for bit.
template <class Traits>
struct DirectRun {
  RunResult<typename Traits::Protocol::State> res;
  std::int64_t closure_violations = 0;
  std::vector<std::string> printed_final;
};

template <class Traits>
DirectRun<Traits> direct_run(const Graph& g, VertexId diam,
                             const SessionSpec& spec) {
  const auto proto = Traits::make(g, diam);
  const auto daemon = make_daemon(spec.daemon, spec.seed);
  const std::string init =
      spec.init.empty() ? Traits::info().inits.front() : spec.init;
  RunOptions opt;
  opt.engine = spec.engine;
  opt.max_steps =
      spec.max_steps > 0 ? spec.max_steps : Traits::step_cap(g, diam);
  if (Traits::kStopAtConvergence) opt.steps_after_convergence = 0;
  ClosureCounting checker(Traits::make_checker(g, proto));
  DirectRun<Traits> out;
  out.res = run_with_engine(g, proto, *daemon,
                            Traits::make_init(g, proto, init, spec.seed), opt,
                            checker);
  out.closure_violations = checker.violations();
  for (const auto& s : out.res.final_config) {
    out.printed_final.push_back(Traits::print_state(s));
  }
  return out;
}

/// Topologies a protocol is exercised on: rings always, plus a path and
/// a random graph for protocols not confined to rings.
std::vector<Graph> topologies_for(const ProtocolInfo& info) {
  std::vector<Graph> out;
  out.push_back(make_ring(8));
  if (!info.ring_only) {
    out.push_back(make_path(7));
    out.push_back(make_random_connected(10, 0.3, 21));
  }
  return out;
}

TEST(ProtocolRegistryTest, BuiltinsMatchTheTraitsList) {
  // The registry registers exactly the protocols the traits visitor
  // enumerates (same names, same order) — the two lists cannot drift.
  std::vector<std::string> from_traits;
  for_each_builtin_protocol([&](auto tag) {
    from_traits.push_back(decltype(tag)::Traits::info().name);
  });
  EXPECT_EQ(ProtocolRegistry::instance().names(), from_traits);
  EXPECT_EQ(from_traits.size(), 9u);
}

TEST(ProtocolRegistryTest, EveryEntryHasUsableMetadata) {
  const Graph g = make_ring(8);
  const VertexId diam = diameter(g);
  for (const auto& entry : ProtocolRegistry::instance().entries()) {
    EXPECT_FALSE(entry.info.description.empty()) << entry.info.name;
    EXPECT_FALSE(entry.info.state_model.empty()) << entry.info.name;
    ASSERT_FALSE(entry.info.inits.empty()) << entry.info.name;
    for (const auto& init : entry.info.inits) {
      EXPECT_TRUE(entry.supports_init(init)) << entry.info.name;
    }
    EXPECT_FALSE(entry.supports_init("no-such-init")) << entry.info.name;
    EXPECT_GT(entry.default_step_cap(g, diam), 0) << entry.info.name;
  }
  EXPECT_TRUE(
      ProtocolRegistry::instance().at("dijkstra-ring").info.ring_only);
  EXPECT_FALSE(ProtocolRegistry::instance().at("ssme").info.ring_only);
}

TEST(ProtocolRegistryTest, LookupErrors) {
  EXPECT_EQ(ProtocolRegistry::instance().find("nope"), nullptr);
  try {
    (void)ProtocolRegistry::instance().at("nope");
    FAIL() << "expected std::invalid_argument";
  } catch (const std::invalid_argument& e) {
    // The error names the known protocols so CLI users can self-serve.
    EXPECT_NE(std::string(e.what()).find("dijkstra-ring"),
              std::string::npos);
  }
}

TEST(ProtocolRegistryTest, RejectsDuplicateAndMalformedEntries) {
  auto& registry = ProtocolRegistry::instance();
  EXPECT_THROW(registry.add(make_protocol_entry<SsmeGamma1Traits>()),
               std::invalid_argument);
  EXPECT_THROW(registry.add(ProtocolEntry{}), std::invalid_argument);
}

TEST(ProtocolRegistryTest, ErasedPathMatchesDirectTemplatedPath) {
  // For every registered protocol, every init it supports, and a daemon
  // mix, the erased session must reproduce the hand-rolled typed
  // pipeline byte for byte: printed final configuration and the whole
  // metering surface.
  for_each_builtin_protocol([&](auto tag) {
    using Traits = typename decltype(tag)::Traits;
    const ProtocolInfo info = Traits::info();
    const ProtocolEntry& entry = ProtocolRegistry::instance().at(info.name);
    for (const auto& g : topologies_for(info)) {
      const VertexId diam = diameter(g);
      for (const std::string daemon :
           {"synchronous", "central-rr", "bernoulli-0.5"}) {
        for (const auto& init : info.inits) {
          SessionSpec spec;
          spec.daemon = daemon;
          spec.init = init;
          spec.seed = 0x5eed + g.n();
          const SessionResult erased = entry.run_on(g, diam, spec);
          const auto direct = direct_run<Traits>(g, diam, spec);
          const std::string ctx = info.name + "/" + daemon + "/" + init +
                                  "/n=" + std::to_string(g.n());
          EXPECT_EQ(erased.final_state, direct.printed_final) << ctx;
          EXPECT_EQ(erased.steps, direct.res.steps) << ctx;
          EXPECT_EQ(erased.moves, direct.res.moves) << ctx;
          EXPECT_EQ(erased.rounds, direct.res.rounds) << ctx;
          EXPECT_EQ(erased.terminated, direct.res.terminated) << ctx;
          EXPECT_EQ(erased.hit_step_cap, direct.res.hit_step_cap) << ctx;
          EXPECT_EQ(erased.converged, direct.res.converged()) << ctx;
          if (direct.res.converged()) {
            EXPECT_EQ(erased.convergence_steps,
                      direct.res.convergence_steps())
                << ctx;
          }
          EXPECT_EQ(erased.moves_to_convergence,
                    direct.res.moves_to_convergence)
              << ctx;
          EXPECT_EQ(erased.rounds_to_convergence,
                    direct.res.rounds_to_convergence)
              << ctx;
          EXPECT_EQ(erased.closure_violations, direct.closure_violations)
              << ctx;
        }
      }
    }
  });
}

TEST(ProtocolRegistryTest, EnginesAgreeThroughTheErasedBoundary) {
  // Incremental vs reference, addressed purely by name: meters and final
  // digests must match for every protocol.
  for (const auto& name : ProtocolRegistry::instance().names()) {
    const ProtocolEntry& entry = ProtocolRegistry::instance().at(name);
    const Graph g = make_ring(9);
    const VertexId diam = diameter(g);
    for (std::uint64_t seed = 1; seed <= 5; ++seed) {
      SessionSpec spec;
      spec.daemon = "random-subset";
      spec.seed = seed;
      spec.engine = EngineKind::kIncremental;
      const SessionResult inc = entry.run_on(g, diam, spec);
      spec.engine = EngineKind::kReference;
      const SessionResult ref = entry.run_on(g, diam, spec);
      const std::string ctx = name + "/seed=" + std::to_string(seed);
      EXPECT_EQ(inc.final_digest, ref.final_digest) << ctx;
      EXPECT_EQ(inc.final_state, ref.final_state) << ctx;
      EXPECT_EQ(inc.steps, ref.steps) << ctx;
      EXPECT_EQ(inc.moves, ref.moves) << ctx;
      EXPECT_EQ(inc.rounds, ref.rounds) << ctx;
      EXPECT_EQ(inc.converged, ref.converged) << ctx;
      EXPECT_EQ(inc.closure_violations, ref.closure_violations) << ctx;
    }
  }
}

TEST(ProtocolRegistryTest, UnsupportedInitThrows) {
  const ProtocolEntry& entry =
      ProtocolRegistry::instance().at("dijkstra-ring");
  SessionSpec spec;
  spec.init = "two-gradient";
  EXPECT_THROW((void)entry.run(make_ring(6), spec), std::invalid_argument);
}

TEST(ProtocolRegistryTest, RingOnlyProtocolsRejectNonRingsAtTheBoundary) {
  // The guard lives in the session itself, so every caller — CLI,
  // campaign, library users — is protected from silently mislabeled
  // results (Dijkstra's predecessor arithmetic off a ring is garbage).
  const ProtocolEntry& entry =
      ProtocolRegistry::instance().at("dijkstra-ring");
  EXPECT_THROW((void)entry.run(make_path(6), SessionSpec{}),
               std::invalid_argument);
  EXPECT_NO_THROW((void)entry.run(make_ring(6), SessionSpec{}));
  EXPECT_TRUE(is_ring_topology(make_ring(5)));
  EXPECT_FALSE(is_ring_topology(make_path(5)));
  EXPECT_FALSE(is_ring_topology(make_star(5)));
  // A cycle over *permuted* ids is structurally a ring but its graph
  // adjacency does not match the index-arithmetic predecessors ring
  // protocols use — it must be rejected, or the incremental engine's
  // dirty-set locality would silently go stale.
  const Graph permuted(5, {{0, 2}, {2, 4}, {4, 1}, {1, 3}, {3, 0}});
  EXPECT_FALSE(is_ring_topology(permuted));
}

TEST(ProtocolRegistryTest, MetersOnlySkipsRenderedOutputs) {
  const ProtocolEntry& entry = ProtocolRegistry::instance().at("ssme");
  const Graph g = make_ring(8);
  SessionSpec spec;
  spec.seed = 9;
  spec.meters_only = true;
  const SessionResult lean = entry.run(g, spec);
  EXPECT_TRUE(lean.final_state.empty());
  EXPECT_TRUE(lean.notes.empty());
  spec.meters_only = false;
  const SessionResult full = entry.run(g, spec);
  EXPECT_FALSE(full.final_state.empty());
  // The meters are identical either way.
  EXPECT_EQ(lean.steps, full.steps);
  EXPECT_EQ(lean.moves, full.moves);
  EXPECT_EQ(lean.converged, full.converged);
}

TEST(ProtocolRegistryTest, SessionExposesReconstructibleDeltaTrace) {
  const ProtocolEntry& entry = ProtocolRegistry::instance().at("ssme");
  const Graph g = make_ring(8);
  SessionSpec spec;
  spec.seed = 11;
  spec.record_trace = true;
  const SessionResult res = entry.run(g, spec);
  ASSERT_TRUE(res.trace_config);
  ASSERT_EQ(res.trace_length, res.steps + 1);
  // gamma_0 differs from the final configuration (the run moved), and
  // the last reconstructed configuration is exactly the final state.
  EXPECT_EQ(res.trace_config(res.trace_length - 1), res.final_state);
  EXPECT_EQ(res.trace_config(0).size(), static_cast<std::size_t>(g.n()));
  ASSERT_GT(res.steps, 0);
  EXPECT_NE(res.trace_config(0), res.final_state);

  // The streaming materializer agrees with per-index reconstruction.
  ASSERT_TRUE(res.trace_materialize);
  const auto all = res.trace_materialize();
  ASSERT_EQ(all.size(), static_cast<std::size_t>(res.trace_length));
  for (StepIndex i = 0; i < res.trace_length; ++i) {
    ASSERT_EQ(all[static_cast<std::size_t>(i)], res.trace_config(i))
        << "gamma_" << i;
  }

  // Without record_trace the session carries no trace machinery.
  spec.record_trace = false;
  const SessionResult bare = entry.run(g, spec);
  EXPECT_EQ(bare.trace_length, 0);
  EXPECT_FALSE(bare.trace_config);
  EXPECT_FALSE(bare.trace_materialize);
}

TEST(ProtocolRegistryTest, SessionDigestDiscriminatesFinalStates) {
  // Unbounded-unison final clocks retain the (seed-dependent) magnitude
  // of the initial values — the digest must see that; identical runs
  // must collide.
  const ProtocolEntry& entry =
      ProtocolRegistry::instance().at("unbounded-unison");
  const Graph g = make_ring(8);
  SessionSpec spec;
  spec.daemon = "central-rr";
  spec.seed = 1;
  const SessionResult a = entry.run(g, spec);
  const SessionResult b = entry.run(g, spec);
  EXPECT_EQ(a.final_digest, b.final_digest);
  EXPECT_EQ(a.final_state, b.final_state);
  spec.seed = 2;
  const SessionResult c = entry.run(g, spec);
  EXPECT_NE(a.final_state, c.final_state);
  EXPECT_NE(a.final_digest, c.final_digest);
}

}  // namespace
}  // namespace specstab
