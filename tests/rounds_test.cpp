// Unit tests for asynchronous round accounting.
#include "sim/trace.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace specstab {
namespace {

TEST(RoundCounterTest, SynchronousStepsAreRounds) {
  RoundCounter rc(3);
  // Every action serves the whole enabled set: one round per action.
  rc.on_action({0, 1, 2}, {0, 1, 2}, {0, 1, 2});
  EXPECT_EQ(rc.completed_rounds(), 1);
  rc.on_action({0, 1, 2}, {0, 1, 2}, {});
  EXPECT_EQ(rc.completed_rounds(), 2);
}

TEST(RoundCounterTest, CentralScheduleNeedsFullSweep) {
  RoundCounter rc(3);
  rc.on_action({0, 1, 2}, {0}, {0, 1, 2});
  EXPECT_EQ(rc.completed_rounds(), 0);
  rc.on_action({0, 1, 2}, {1}, {0, 1, 2});
  EXPECT_EQ(rc.completed_rounds(), 0);
  rc.on_action({0, 1, 2}, {2}, {0, 1, 2});
  EXPECT_EQ(rc.completed_rounds(), 1);  // all three initially-enabled served
}

TEST(RoundCounterTest, DisablingNeutralisesPending) {
  RoundCounter rc(3);
  rc.on_action({0, 1, 2}, {0}, {0, 1});  // 2 became disabled: neutralised
  EXPECT_EQ(rc.completed_rounds(), 0);
  rc.on_action({0, 1}, {1}, {0, 1});     // 0 and 1 served -> round closes
  EXPECT_EQ(rc.completed_rounds(), 1);
}

TEST(RoundCounterTest, ReactivationDoesNotRejoinOpenRound) {
  RoundCounter rc(2);
  // Round opens on {0, 1}; vertex 1 disabled then re-enabled: it was
  // neutralised, so only 0 remains pending.
  rc.on_action({0, 1}, {0}, {0});
  EXPECT_EQ(rc.completed_rounds(), 1);  // 0 served, 1 neutralised
}

TEST(RoundCounterTest, ResetClearsState) {
  RoundCounter rc(2);
  rc.on_action({0, 1}, {0}, {0, 1});
  rc.reset();
  EXPECT_EQ(rc.completed_rounds(), 0);
  rc.on_action({0, 1}, {0, 1}, {});
  EXPECT_EQ(rc.completed_rounds(), 1);
}

// Integration: engine round metering on a countdown protocol.
struct CountdownProtocol {
  using State = int;
  [[nodiscard]] bool enabled(const Graph&, const Config<State>& cfg,
                             VertexId v) const {
    return cfg[static_cast<std::size_t>(v)] > 0;
  }
  [[nodiscard]] State apply(const Graph&, const Config<State>& cfg,
                            VertexId v) const {
    return cfg[static_cast<std::size_t>(v)] - 1;
  }
  [[nodiscard]] std::string_view rule_name(const Graph&, const Config<State>&,
                                           VertexId) const {
    return "DEC";
  }
};

TEST(RoundCounterTest, EngineSynchronousRoundsEqualSteps) {
  const Graph g = make_ring(5);
  CountdownProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  const auto res =
      run_execution(g, proto, d, Config<int>{3, 3, 3, 3, 3}, opt);
  EXPECT_EQ(res.steps, 3);
  EXPECT_EQ(res.rounds, res.steps);
}

TEST(RoundCounterTest, EngineCentralRoundsAreCompressed) {
  const Graph g = make_ring(4);
  CountdownProtocol proto;
  CentralRoundRobinDaemon d;
  RunOptions opt;
  const auto res =
      run_execution(g, proto, d, Config<int>{2, 2, 2, 2}, opt);
  EXPECT_EQ(res.steps, 8);   // 8 central actions
  EXPECT_EQ(res.rounds, 2);  // two sweeps over everyone
}

}  // namespace
}  // namespace specstab
