// Tests for schedule recording, replay, and serialization: a recorded
// randomized run replays move-for-move through ScheduledDaemon.
#include "sim/schedule.hpp"

#include <gtest/gtest.h>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

TEST(ScheduleTest, TextRoundTrip) {
  const Schedule schedule = {{3, 7, 12}, {0}, {1, 2}};
  const auto text = schedule_to_text(schedule);
  EXPECT_EQ(text, "3 7 12\n0\n1 2\n");
  EXPECT_EQ(schedule_from_text(text), schedule);
}

TEST(ScheduleTest, ParseRejectsMalformedInput) {
  EXPECT_THROW(schedule_from_text("1 2\n\n3\n"), std::invalid_argument);
  EXPECT_THROW(schedule_from_text("1 x 2\n"), std::invalid_argument);
}

TEST(ScheduleTest, EmptyScheduleSerializesToEmptyText) {
  EXPECT_EQ(schedule_to_text({}), "");
  EXPECT_TRUE(schedule_from_text("").empty());
}

TEST(ScheduleTest, RecordedRandomRunReplaysExactly) {
  const Graph g = make_grid(3, 3);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const auto init = random_config(g, proto.clock(), 21);
  RunOptions opt;
  opt.max_steps = 200;

  // Record a randomized run.
  DistributedBernoulliDaemon random_daemon(0.6, 77);
  RecordingDaemon recorder(random_daemon);
  const auto original = run_execution(g, proto, recorder, init, opt);
  ASSERT_GT(recorder.schedule().size(), 0u);

  // Replay it deterministically (round-trip through text on the way).
  const auto schedule =
      schedule_from_text(schedule_to_text(recorder.schedule()));
  ScheduledDaemon replayer(schedule);
  const auto replayed = run_execution(g, proto, replayer, init, opt);

  EXPECT_EQ(replayed.final_config, original.final_config);
  EXPECT_EQ(replayed.steps, original.steps);
  EXPECT_EQ(replayed.moves, original.moves);
}

TEST(ScheduleTest, ResetDiscardsRecording) {
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon inner;
  RecordingDaemon recorder(inner);
  RunOptions opt;
  opt.max_steps = 10;
  (void)run_execution(g, proto, recorder, zero_config(g), opt);
  EXPECT_EQ(recorder.schedule().size(), 10u);
  recorder.reset();
  EXPECT_TRUE(recorder.schedule().empty());
}

TEST(ScheduleTest, TakeScheduleMovesOutTheRecording) {
  const Graph g = make_ring(4);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon inner;
  RecordingDaemon recorder(inner);
  RunOptions opt;
  opt.max_steps = 5;
  (void)run_execution(g, proto, recorder, zero_config(g), opt);
  const auto schedule = recorder.take_schedule();
  EXPECT_EQ(schedule.size(), 5u);
  EXPECT_TRUE(recorder.schedule().empty());
}

TEST(ScheduleTest, ReplayedScheduleIntersectsEnabledSet) {
  // Replaying a schedule against a *different* initial configuration is
  // legal: ScheduledDaemon intersects with the enabled set (falling back
  // when empty), so the run stays a valid execution.
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  RunOptions opt;
  opt.max_steps = 50;

  CentralRandomDaemon random_daemon(5);
  RecordingDaemon recorder(random_daemon);
  (void)run_execution(g, proto, recorder,
                      random_config(g, proto.clock(), 1), opt);

  ScheduledDaemon replayer(recorder.take_schedule());
  const auto res = run_execution(g, proto, replayer,
                                 random_config(g, proto.clock(), 2), opt);
  EXPECT_GT(res.steps, 0);
}

}  // namespace
}  // namespace specstab
