// Registry-wide equivalence: results delivered over the serve socket
// must be byte-identical to direct in-process sessions — for every
// registered protocol, for cache hits vs cold misses, and for streamed
// traces re-materialized delta by delta.  This is the guarantee that
// makes the serve cache safe: a client cannot tell (even with a byte
// diff) whether its reply was computed or replayed.
#include <unistd.h>

#include <gtest/gtest.h>

#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "graph/graph.hpp"
#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"
#include "serve/wire.hpp"
#include "sim/protocol_registry.hpp"

namespace specstab::serve {
namespace {

std::string next_socket_path() {
  static int counter = 0;
  return "/tmp/specstab-serve-equiv-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter++) + ".sock";
}

/// Builds the graph exactly as the server does: cli::graph_from_spec
/// over the canonical topology's whitespace-split tokens.
[[nodiscard]] Graph graph_for(const std::string& canonical) {
  std::vector<std::string> tokens;
  std::istringstream is(canonical);
  for (std::string token; is >> token;) tokens.push_back(token);
  std::size_t pos = 0;
  return cli::graph_from_spec(tokens, pos);
}

/// The fixed sweep spec: a deterministic daemon with a pinned seed, so
/// both sides of every comparison run the same schedule.
[[nodiscard]] SessionSpec sweep_spec() {
  SessionSpec spec;
  spec.daemon = "central-rr";
  spec.seed = 5;
  return spec;
}

[[nodiscard]] std::string sweep_request(int id, const std::string& method,
                                        const std::string& protocol,
                                        const std::string& topology) {
  return "{\"id\":" + std::to_string(id) + ",\"method\":\"" + method +
         "\",\"params\":{\"protocol\":\"" + protocol + "\",\"topology\":\"" +
         topology + "\",\"daemon\":\"central-rr\",\"seed\":5}}";
}

/// The (protocol, topology) sweep: ring 8 for everything, plus a
/// non-ring topology for protocols that support one.
[[nodiscard]] std::vector<std::pair<std::string, std::string>> sweep() {
  std::vector<std::pair<std::string, std::string>> pairs;
  for (const ProtocolEntry& entry : ProtocolRegistry::instance().entries()) {
    pairs.emplace_back(entry.info.name, "ring 8");
    if (!entry.info.ring_only) pairs.emplace_back(entry.info.name, "torus 3 4");
  }
  return pairs;
}

class ServeEquivalenceTest : public ::testing::Test {
 protected:
  void SetUp() override {
    ServeOptions options;
    options.endpoint = Endpoint::unix_path(next_socket_path());
    server_ = std::make_unique<SessionServer>(options);
    server_->start();
  }
  void TearDown() override {
    server_->initiate_shutdown();
    server_->wait();
  }

  std::unique_ptr<SessionServer> server_;
};

TEST_F(ServeEquivalenceTest, RunRepliesMatchDirectSessionsByteForByte) {
  LineClient client(server_->endpoint());
  int id = 0;
  for (const auto& [protocol, topology] : sweep()) {
    ++id;
    const std::string reply =
        client.roundtrip(sweep_request(id, "run", protocol, topology));

    // The direct session, rendered with the same codec.
    SessionRequest sreq;
    sreq.protocol = protocol;
    sreq.topology = topology;
    sreq.spec = sweep_spec();
    const Graph g = graph_for(topology);
    const SessionResult direct =
        ProtocolRegistry::instance().at(protocol).run(g, sreq.spec);
    const std::string expected = render_result_line_raw(
        JsonValue(id), session_result_to_json(sreq, direct, false).dump());

    EXPECT_EQ(reply + "\n", expected) << protocol << " on " << topology;
  }
}

TEST_F(ServeEquivalenceTest, CacheHitBytesEqualColdMissBytes) {
  LineClient client(server_->endpoint());
  int id = 0;
  std::uint64_t expected_hits = 0;
  for (const auto& [protocol, topology] : sweep()) {
    ++id;
    const std::string line = sweep_request(id, "run", protocol, topology);
    const std::string cold = client.roundtrip(line);  // miss: computes
    const std::string warm = client.roundtrip(line);  // hit: replays
    EXPECT_EQ(cold, warm) << protocol << " on " << topology;
    ++expected_hits;
  }
  const SessionServer::Stats stats = server_->stats();
  EXPECT_EQ(stats.cache.hits, expected_hits);
  EXPECT_EQ(stats.cache.misses, expected_hits);  // each tuple missed once
}

TEST_F(ServeEquivalenceTest, CanonicalizationMakesSpellingsShareCacheBytes) {
  LineClient client(server_->endpoint());
  const std::string reply1 = client.roundtrip(
      "{\"id\":9,\"method\":\"run\",\"params\":{\"protocol\":\"ssme\","
      "\"topology\":\"ring 8\",\"daemon\":\"central-rr\",\"seed\":5}}");
  // Same tuple, scruffy spelling: must hit the cache and echo the
  // canonical topology — byte-identical result payload.
  const std::string reply2 = client.roundtrip(
      "{\"id\":9,\"method\":\"run\",\"params\":{\"protocol\":\"ssme\","
      "\"topology\":\"  ring\\t8 \",\"daemon\":\"central-rr\",\"seed\":5}}");
  EXPECT_EQ(reply1, reply2);
  EXPECT_GE(server_->stats().cache.hits, 1u);
}

TEST_F(ServeEquivalenceTest, StreamedTracesMatchDirectTraceByteForByte) {
  LineClient client(server_->endpoint());
  int id = 100;
  for (const ProtocolEntry& entry : ProtocolRegistry::instance().entries()) {
    ++id;
    const std::string protocol = entry.info.name;
    const std::string topology = "ring 8";

    // Direct traced session.
    SessionRequest sreq;
    sreq.protocol = protocol;
    sreq.topology = topology;
    sreq.spec = sweep_spec();
    sreq.spec.record_trace = true;
    const Graph g = graph_for(topology);
    const SessionResult direct = entry.run(g, sreq.spec);
    ASSERT_TRUE(static_cast<bool>(direct.trace_config)) << protocol;
    ASSERT_GE(direct.trace_length, 1u) << protocol;
    const StepIndex records = direct.trace_length - 1;

    // Socket stream, compared line by line against the local renderer.
    ASSERT_TRUE(
        client.send_line(sweep_request(id, "trace", protocol, topology)));
    const JsonValue rid(id);
    std::optional<std::string> line = client.read_line();
    ASSERT_TRUE(line.has_value()) << protocol;
    EXPECT_EQ(*line + "\n",
              render_result_line_raw(
                  rid, session_result_to_json(sreq, direct, true).dump()))
        << protocol << " header";
    line = client.read_line();
    ASSERT_TRUE(line.has_value()) << protocol;
    EXPECT_EQ(*line + "\n",
              render_trace_init_line(rid, direct.trace_config(0)))
        << protocol << " gamma_0";
    for (StepIndex i = 0; i < records; ++i) {
      line = client.read_line();
      ASSERT_TRUE(line.has_value()) << protocol << " delta " << i;
      EXPECT_EQ(*line + "\n",
                render_trace_delta_line(rid, i, direct.trace_delta(i)))
          << protocol << " delta " << i;
    }
    line = client.read_line();
    ASSERT_TRUE(line.has_value()) << protocol;
    EXPECT_EQ(*line + "\n", render_trace_end_line(rid, records))
        << protocol << " end";
  }
}

TEST_F(ServeEquivalenceTest, StreamedDeltasRematerializeTheFullTrace) {
  LineClient client(server_->endpoint());
  const std::string protocol = "ssme";
  const std::string topology = "ring 12";

  SessionRequest sreq;
  sreq.protocol = protocol;
  sreq.topology = topology;
  sreq.spec = sweep_spec();
  sreq.spec.record_trace = true;
  const Graph g = graph_for(topology);
  const SessionResult direct =
      ProtocolRegistry::instance().at(protocol).run(g, sreq.spec);
  ASSERT_TRUE(static_cast<bool>(direct.trace_config));

  ASSERT_TRUE(client.send_line(sweep_request(7, "trace", protocol, topology)));
  ASSERT_TRUE(client.read_line().has_value());  // header
  std::optional<std::string> line = client.read_line();
  ASSERT_TRUE(line.has_value());
  const JsonValue init = JsonValue::parse(*line);
  std::vector<std::string> config;
  for (const JsonValue& v : init.find("trace")->find("config")->as_array()) {
    config.push_back(v.as_string());
  }
  EXPECT_EQ(config, direct.trace_config(0));

  // Apply each streamed delta; after delta i the rebuilt configuration
  // must equal the direct session's gamma_{i+1}.
  StepIndex applied = 0;
  for (;;) {
    line = client.read_line();
    ASSERT_TRUE(line.has_value());
    const JsonValue rec = JsonValue::parse(*line);
    const JsonValue* trace = rec.find("trace");
    ASSERT_NE(trace, nullptr);
    if (trace->find("type")->as_string() == "end") {
      EXPECT_EQ(static_cast<StepIndex>(trace->find("records")->as_int()),
                applied);
      break;
    }
    ASSERT_EQ(trace->find("type")->as_string(), "delta");
    for (const JsonValue& change : trace->find("changes")->as_array()) {
      const auto v = static_cast<std::size_t>(change.find("v")->as_int());
      ASSERT_LT(v, config.size());
      EXPECT_EQ(config[v], change.find("before")->as_string());
      config[v] = change.find("after")->as_string();
    }
    ++applied;
    EXPECT_EQ(config, direct.trace_config(applied)) << "after delta "
                                                    << (applied - 1);
  }
  EXPECT_EQ(applied, direct.trace_length - 1);
  // The rebuilt end state is the reply's final_state.
  EXPECT_EQ(config, direct.final_state);
}

}  // namespace
}  // namespace specstab::serve
