// Wire-protocol tests for `specstab serve`, driven over real sockets
// against an in-process SessionServer: malformed-input fuzzing (every
// bad line gets a structured error, the connection and the server
// survive), oversized-line resync, partial writes, pipelining, busy
// backpressure, abrupt disconnect mid-stream, and drain-on-shutdown.
#include <unistd.h>

#include <gtest/gtest.h>

#include <chrono>
#include <optional>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/server.hpp"

namespace specstab::serve {
namespace {

/// Fresh unix-socket path per server, so tests never collide.
std::string next_socket_path() {
  static int counter = 0;
  return "/tmp/specstab-serve-test-" + std::to_string(::getpid()) + "-" +
         std::to_string(counter++) + ".sock";
}

/// An in-process server on a private unix socket, drained on teardown.
class ServerHarness {
 public:
  explicit ServerHarness(ServeOptions options = {}) : server_([&] {
    options.endpoint = Endpoint::unix_path(next_socket_path());
    return options;
  }()) {
    server_.start();
  }
  ~ServerHarness() {
    server_.initiate_shutdown();
    server_.wait();
  }

  [[nodiscard]] SessionServer& server() { return server_; }
  [[nodiscard]] LineClient connect() { return LineClient(server_.endpoint()); }

 private:
  SessionServer server_;
};

[[nodiscard]] std::string error_code(const std::string& reply) {
  const JsonValue parsed = JsonValue::parse(reply);
  const JsonValue* error = parsed.find("error");
  if (error == nullptr) return "";
  const JsonValue* code = error->find("code");
  return code != nullptr ? code->as_string() : "";
}

[[nodiscard]] bool is_result(const std::string& reply) {
  return JsonValue::parse(reply).find("result") != nullptr;
}

[[nodiscard]] std::string run_request(int id, const std::string& protocol,
                                      const std::string& topology,
                                      const std::string& extra = "") {
  return "{\"id\":" + std::to_string(id) + ",\"method\":\"run\",\"params\":{" +
         "\"protocol\":\"" + protocol + "\",\"topology\":\"" + topology +
         "\"" + extra + "}}";
}

TEST(ServeProtocolTest, MalformedLinesGetStructuredErrorsNeverCrash) {
  ServerHarness harness;
  LineClient client = harness.connect();

  struct Case {
    const char* line;
    const char* expected_code;
  };
  const Case cases[] = {
      {"garbage", "parse"},
      {"{\"id\": 1, \"method\":", "parse"},  // truncated JSON
      {"[1,2,3]", "invalid"},                // JSON but not an object
      {"{\"id\":1,\"method\":9}", "invalid"},          // method wrong type
      {"{\"id\":1,\"params\":{}}", "invalid"},         // method missing
      {"{\"id\":1,\"method\":\"run\",\"params\":[]}", "invalid"},
      {"{\"id\":1,\"method\":\"frobnicate\"}", "invalid"},  // unknown method
      {"{\"id\":1,\"method\":\"run\",\"params\":{}}", "invalid"},
  };
  for (const Case& c : cases) {
    const std::string reply = client.roundtrip(c.line);
    EXPECT_EQ(error_code(reply), c.expected_code) << "line: " << c.line;
  }
  EXPECT_EQ(error_code(client.roundtrip(
                run_request(2, "no-such-protocol", "ring 8"))),
            "invalid");
  EXPECT_EQ(error_code(client.roundtrip(run_request(
                3, "ssme", "ring 8", ",\"daemon\":\"no-such-daemon\""))),
            "invalid");
  EXPECT_EQ(error_code(client.roundtrip(run_request(
                4, "ssme", "ring 8", ",\"init\":\"no-such-init\""))),
            "invalid");
  EXPECT_EQ(error_code(client.roundtrip(
                run_request(5, "ssme", "ring 8", ",\"surprise\":true"))),
            "invalid");
  EXPECT_EQ(error_code(client.roundtrip(run_request(6, "ssme", "blorp 3"))),
            "invalid");  // unknown topology family (fails in the worker)
  EXPECT_EQ(error_code(client.roundtrip(run_request(7, "ssme", "ring"))),
            "invalid");  // family missing its size

  // After all that abuse, the same connection still serves sessions.
  const std::string reply = client.roundtrip(run_request(8, "ssme", "ring 8"));
  EXPECT_TRUE(is_result(reply)) << reply;
  EXPECT_EQ(harness.server().stats().active_connections, 1u);
}

TEST(ServeProtocolTest, ErrorRepliesEchoTheRequestId) {
  ServerHarness harness;
  LineClient client = harness.connect();
  const JsonValue reply = JsonValue::parse(
      client.roundtrip("{\"id\":\"tag-77\",\"method\":\"nope\"}"));
  ASSERT_NE(reply.find("id"), nullptr);
  EXPECT_EQ(reply.find("id")->as_string(), "tag-77");
  // Unparseable line -> id null (there is nothing to echo).
  const JsonValue bad = JsonValue::parse(client.roundtrip("{{{"));
  ASSERT_NE(bad.find("id"), nullptr);
  EXPECT_EQ(bad.find("id")->kind(), JsonValue::Kind::kNull);
}

TEST(ServeProtocolTest, OversizedLineYieldsErrorThenResyncs) {
  ServeOptions options;
  options.max_line_bytes = 256;
  ServerHarness harness(options);
  LineClient client = harness.connect();

  std::string huge = "{\"id\":1,\"method\":\"run\",\"params\":{\"pad\":\"";
  huge.append(1024, 'x');
  huge += "\"}}";
  const std::string reply = client.roundtrip(huge);
  EXPECT_EQ(error_code(reply), "oversized");
  // Framing survives: the next (normal) line parses and runs.
  EXPECT_TRUE(is_result(client.roundtrip(run_request(2, "ssme", "ring 8"))));
}

TEST(ServeProtocolTest, PartialWritesAssembleIntoOneRequest) {
  ServerHarness harness;
  LineClient client = harness.connect();
  const std::string line = run_request(42, "ssme", "ring 8") + "\n";
  // Dribble the request across the socket in three flushes.
  const std::size_t third = line.size() / 3;
  ASSERT_TRUE(client.send_raw(line.substr(0, third)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.send_raw(line.substr(third, third)));
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  ASSERT_TRUE(client.send_raw(line.substr(2 * third)));
  const std::optional<std::string> reply = client.read_line();
  ASSERT_TRUE(reply.has_value());
  EXPECT_TRUE(is_result(*reply));
  EXPECT_EQ(JsonValue::parse(*reply).find("id")->as_int(), 42);
}

TEST(ServeProtocolTest, BlankLinesAreIgnoredKeepAlive) {
  ServerHarness harness;
  LineClient client = harness.connect();
  ASSERT_TRUE(client.send_raw("\n\n\n"));
  const std::string reply = client.roundtrip(run_request(1, "ssme", "ring 8"));
  EXPECT_TRUE(is_result(reply));
}

TEST(ServeProtocolTest, PipelinedRequestsReplyInOrderWithOneWorker) {
  ServeOptions options;
  options.threads = 1;  // FIFO queue + one worker => deterministic order
  options.queue_capacity = 64;
  ServerHarness harness(options);
  LineClient client = harness.connect();
  constexpr int kCount = 10;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send_line(
        run_request(i, "ssme", "ring 8",
                    ",\"seed\":" + std::to_string(100 + i))));
  }
  for (int i = 0; i < kCount; ++i) {
    const std::optional<std::string> reply = client.read_line();
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    EXPECT_TRUE(is_result(*reply));
    EXPECT_EQ(JsonValue::parse(*reply).find("id")->as_int(), i);
  }
}

TEST(ServeProtocolTest, FullQueueRepliesBusyNeverSilentDrop) {
  ServeOptions options;
  options.threads = 1;
  options.queue_capacity = 1;  // one in flight + one waiting, rest busy
  ServerHarness harness(options);
  LineClient client = harness.connect();

  // Chunky-enough sessions that the single worker cannot drain the
  // queue between two reader-thread parses; distinct seeds so none are
  // cache hits.
  constexpr int kCount = 30;
  for (int i = 0; i < kCount; ++i) {
    ASSERT_TRUE(client.send_line(
        run_request(i, "ssme", "ring 128",
                    ",\"daemon\":\"central-rr\",\"seed\":" +
                        std::to_string(500 + i))));
  }
  int results = 0;
  int busy = 0;
  for (int i = 0; i < kCount; ++i) {
    const std::optional<std::string> reply = client.read_line();
    ASSERT_TRUE(reply.has_value()) << "reply " << i;
    if (is_result(*reply)) {
      ++results;
    } else {
      EXPECT_EQ(error_code(*reply), "busy") << *reply;
      ++busy;
    }
  }
  // The contract: every request is answered, overload answers `busy`.
  EXPECT_EQ(results + busy, kCount);
  EXPECT_GE(busy, 1);
  EXPECT_GE(results, 1);  // at least the first accepted job ran
  EXPECT_EQ(harness.server().stats().busy_rejections,
            static_cast<std::uint64_t>(busy));
}

TEST(ServeProtocolTest, AbruptDisconnectMidTraceStreamIsHarmless) {
  ServerHarness harness;
  {
    LineClient client = harness.connect();
    ASSERT_TRUE(client.send_line(
        "{\"id\":1,\"method\":\"trace\",\"params\":{\"protocol\":\"ssme\","
        "\"topology\":\"ring 32\",\"daemon\":\"central-rr\"}}"));
    // Take the header and the first stream line, then slam the door.
    ASSERT_TRUE(client.read_line().has_value());
    ASSERT_TRUE(client.read_line().has_value());
    client.abort();
  }
  // The worker's remaining writes fail against the dead connection; the
  // server carries on.  Prove it with a fresh session.
  LineClient fresh = harness.connect();
  EXPECT_TRUE(is_result(fresh.roundtrip(run_request(2, "ssme", "ring 8"))));
  // Allow the dead connection's reader to unregister.
  for (int i = 0; i < 100; ++i) {
    if (harness.server().stats().active_connections == 1u) break;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  EXPECT_EQ(harness.server().stats().active_connections, 1u);
}

TEST(ServeProtocolTest, HalfCloseDrainsPendingRepliesBeforeEof) {
  ServeOptions options;
  options.threads = 1;
  options.queue_capacity = 64;
  ServerHarness harness(options);
  LineClient client = harness.connect();
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(client.send_line(
        run_request(i, "ssme", "ring 8",
                    ",\"seed\":" + std::to_string(900 + i))));
  }
  client.finish_writes();  // server reader sees EOF after the 5 lines
  int replies = 0;
  while (client.read_line().has_value()) ++replies;
  EXPECT_EQ(replies, 5);  // every accepted job still answered
}

TEST(ServeProtocolTest, ShutdownRpcAcknowledgesThenDrains) {
  auto harness = std::make_unique<ServerHarness>();
  SessionServer& server = harness->server();
  LineClient client(server.endpoint());
  EXPECT_TRUE(is_result(client.roundtrip(run_request(1, "ssme", "ring 8"))));
  const std::string ack =
      client.roundtrip("{\"id\":2,\"method\":\"shutdown\"}");
  const JsonValue parsed = JsonValue::parse(ack);
  ASSERT_NE(parsed.find("result"), nullptr);
  EXPECT_TRUE(parsed.find("result")->find("draining")->as_bool());
  server.wait();  // returns only after the full drain
  EXPECT_FALSE(client.read_line().has_value());  // connection closed
  EXPECT_THROW((void)LineClient(server.endpoint()), std::runtime_error);
  harness.reset();  // teardown's shutdown+wait must be idempotent
}

TEST(ServeProtocolTest, TcpLoopbackEphemeralPortSmoke) {
  ServeOptions options;
  options.endpoint = Endpoint::tcp(0);
  SessionServer server(options);
  server.start();
  EXPECT_NE(server.port(), 0);
  LineClient client(Endpoint::tcp(server.port()));
  const JsonValue reply =
      JsonValue::parse(client.roundtrip("{\"id\":1,\"method\":\"list\"}"));
  const JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  const JsonValue* protocols = result->find("protocols");
  ASSERT_NE(protocols, nullptr);
  bool has_ssme = false;
  for (const JsonValue& p : protocols->as_array()) {
    if (p.find("name") != nullptr && p.find("name")->as_string() == "ssme") {
      has_ssme = true;
    }
  }
  EXPECT_TRUE(has_ssme);
  EXPECT_TRUE(
      is_result(client.roundtrip(run_request(2, "ssme", "ring 8"))));
  server.initiate_shutdown();
  server.wait();
}

TEST(ServeProtocolTest, StatsMethodReportsLiveCounters) {
  ServerHarness harness;
  LineClient client = harness.connect();
  // Same canonical tuple twice: miss then hit.
  ASSERT_TRUE(is_result(client.roundtrip(run_request(1, "ssme", "ring 8"))));
  ASSERT_TRUE(is_result(client.roundtrip(run_request(2, "ssme", "ring 8"))));
  const JsonValue reply =
      JsonValue::parse(client.roundtrip("{\"id\":3,\"method\":\"stats\"}"));
  const JsonValue* result = reply.find("result");
  ASSERT_NE(result, nullptr);
  EXPECT_GE(result->find("requests")->as_int(), 3);
  EXPECT_GE(result->find("sessions_completed")->as_int(), 2);
  const JsonValue* cache = result->find("cache");
  ASSERT_NE(cache, nullptr);
  EXPECT_GE(cache->find("hits")->as_int(), 1);
  EXPECT_GE(cache->find("misses")->as_int(), 1);
}

}  // namespace
}  // namespace specstab::serve
