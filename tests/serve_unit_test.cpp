// Unit tests for the serve building blocks that need no sockets: the
// JSON value/codec, the bounded work queue's backpressure and drain
// contracts, the byte-LRU result cache, and the wire codec's
// request/reply rendering.
#include <gtest/gtest.h>

#include <atomic>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/cache.hpp"
#include "serve/json.hpp"
#include "serve/queue.hpp"
#include "serve/wire.hpp"

namespace specstab::serve {
namespace {

// ----------------------------------------------------------------- json

TEST(ServeJsonTest, ParsesScalarsAndContainers) {
  EXPECT_EQ(JsonValue::parse("null").kind(), JsonValue::Kind::kNull);
  EXPECT_TRUE(JsonValue::parse("true").as_bool());
  EXPECT_EQ(JsonValue::parse("-42").as_int(), -42);
  EXPECT_DOUBLE_EQ(JsonValue::parse("2.5").as_double(), 2.5);
  EXPECT_EQ(JsonValue::parse("\"hi\"").as_string(), "hi");
  const JsonValue arr = JsonValue::parse("[1, 2, 3]");
  ASSERT_EQ(arr.as_array().size(), 3u);
  EXPECT_EQ(arr.as_array()[2].as_int(), 3);
  const JsonValue obj = JsonValue::parse("{\"a\": 1, \"b\": [true]}");
  ASSERT_NE(obj.find("b"), nullptr);
  EXPECT_TRUE(obj.find("b")->as_array()[0].as_bool());
  EXPECT_EQ(obj.find("missing"), nullptr);
}

TEST(ServeJsonTest, DumpParsesBackAndPreservesKeyOrder) {
  const std::string text =
      "{\"z\":1,\"a\":[\"x\",null,false],\"m\":{\"k\":-7}}";
  const JsonValue value = JsonValue::parse(text);
  // Insertion-ordered objects: dump is byte-stable, not alphabetized.
  EXPECT_EQ(value.dump(), text);
  EXPECT_EQ(JsonValue::parse(value.dump()), value);
}

TEST(ServeJsonTest, StringEscapesRoundTrip) {
  const JsonValue value = JsonValue::parse("\"a\\n\\t\\\"b\\\\c\\u0041\"");
  EXPECT_EQ(value.as_string(), "a\n\t\"b\\cA");
  // Control characters re-escape on dump.
  EXPECT_EQ(JsonValue(std::string("x\ny")).dump(), "\"x\\ny\"");
  EXPECT_EQ(JsonValue::parse(JsonValue(std::string("x\x01y")).dump())
                .as_string(),
            std::string("x\x01y"));
}

TEST(ServeJsonTest, RejectsMalformedInput) {
  for (const char* bad :
       {"", "{", "[1,", "{\"a\"}", "{\"a\":}", "nul", "1 2", "\"unterminated",
        "[1] trailing", "{\"a\":1,}", "+5"}) {
    EXPECT_THROW((void)JsonValue::parse(bad), std::invalid_argument)
        << "input: " << bad;
  }
}

TEST(ServeJsonTest, DepthLimitStopsRecursion) {
  std::string deep;
  for (int i = 0; i < 100; ++i) deep += '[';
  for (int i = 0; i < 100; ++i) deep += ']';
  EXPECT_THROW((void)JsonValue::parse(deep), std::invalid_argument);
  EXPECT_NO_THROW((void)JsonValue::parse("[[[[[[[[[[1]]]]]]]]]]"));
}

TEST(ServeJsonTest, TypeMismatchThrows) {
  const JsonValue n = JsonValue::parse("3");
  EXPECT_THROW((void)n.as_string(), std::invalid_argument);
  EXPECT_THROW((void)n.as_array(), std::invalid_argument);
  EXPECT_THROW((void)JsonValue::parse("\"s\"").as_int(),
               std::invalid_argument);
}

// ---------------------------------------------------------------- queue

TEST(ServeQueueTest, TryPushRejectsWhenFullNeverBlocks) {
  BoundedWorkQueue queue(2);
  EXPECT_TRUE(queue.try_push([] {}));
  EXPECT_TRUE(queue.try_push([] {}));
  EXPECT_FALSE(queue.try_push([] {}));  // full -> explicit busy, no block
  EXPECT_EQ(queue.depth(), 2u);
  (void)queue.pop();
  EXPECT_TRUE(queue.try_push([] {}));
}

TEST(ServeQueueTest, CloseDrainsQueuedJobsThenReturnsNullopt) {
  BoundedWorkQueue queue(8);
  std::atomic<int> ran{0};
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(queue.try_push([&ran] { ran.fetch_add(1); }));
  }
  queue.close();
  EXPECT_FALSE(queue.try_push([] {}));  // sealed to producers
  // Consumers still drain everything accepted before the close.
  while (auto job = queue.pop()) (*job)();
  EXPECT_EQ(ran.load(), 5);
}

TEST(ServeQueueTest, PopBlocksUntilPushOrClose) {
  BoundedWorkQueue queue(4);
  std::atomic<bool> got{false};
  std::thread consumer([&] {
    auto job = queue.pop();
    got.store(job.has_value());
  });
  ASSERT_TRUE(queue.try_push([] {}));
  consumer.join();
  EXPECT_TRUE(got.load());
  std::thread waiter([&] {
    auto job = queue.pop();
    got.store(job.has_value());
  });
  queue.close();
  waiter.join();
  EXPECT_FALSE(got.load());  // closed and empty -> worker exit signal
}

// ---------------------------------------------------------------- cache

TEST(ServeCacheTest, HitReturnsIdenticalBytesAndCounts) {
  ResultCache cache(1 << 20);
  EXPECT_FALSE(cache.lookup("k").has_value());
  cache.insert("k", "payload-bytes");
  const auto hit = cache.lookup("k");
  ASSERT_TRUE(hit.has_value());
  EXPECT_EQ(*hit, "payload-bytes");
  const auto stats = cache.stats();
  EXPECT_EQ(stats.hits, 1u);
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.entries, 1u);
  EXPECT_EQ(stats.insertions, 1u);
}

TEST(ServeCacheTest, EvictsLeastRecentlyUsedByBytes) {
  // Each entry costs key + payload + 96 overhead = ~200 bytes; budget
  // fits two.
  ResultCache cache(450);
  cache.insert("a", std::string(100, 'A'));
  cache.insert("b", std::string(100, 'B'));
  ASSERT_TRUE(cache.lookup("a").has_value());  // refresh a: b becomes LRU
  cache.insert("c", std::string(100, 'C'));    // evicts b
  EXPECT_TRUE(cache.lookup("a").has_value());
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("c").has_value());
  const auto stats = cache.stats();
  EXPECT_EQ(stats.evictions, 1u);
  EXPECT_LE(stats.resident_bytes, stats.max_bytes);
}

TEST(ServeCacheTest, OversizedPayloadSkippedNotCached) {
  ResultCache cache(128);
  cache.insert("big", std::string(4096, 'X'));
  EXPECT_FALSE(cache.lookup("big").has_value());
  EXPECT_EQ(cache.stats().oversized_skips, 1u);
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCacheTest, ZeroBudgetDisablesCaching) {
  ResultCache cache(0);
  cache.insert("k", "v");
  EXPECT_FALSE(cache.lookup("k").has_value());
  EXPECT_EQ(cache.stats().entries, 0u);
}

TEST(ServeCacheTest, DuplicateInsertRefreshesRecencyOnly) {
  ResultCache cache(450);
  cache.insert("a", std::string(100, 'A'));
  cache.insert("b", std::string(100, 'B'));
  cache.insert("a", std::string(100, 'A'));  // refresh, not re-insert
  EXPECT_EQ(cache.stats().insertions, 2u);
  cache.insert("c", std::string(100, 'C'));  // evicts b (LRU after refresh)
  EXPECT_FALSE(cache.lookup("b").has_value());
  EXPECT_TRUE(cache.lookup("a").has_value());
}

// ----------------------------------------------------------------- wire

TEST(ServeWireTest, ParseRequestExtractsIdMethodParams) {
  const Request req = parse_request(
      "{\"id\": 7, \"method\": \"run\", \"params\": {\"protocol\": "
      "\"ssme\"}}");
  EXPECT_EQ(req.id.as_int(), 7);
  EXPECT_EQ(req.method, "run");
  ASSERT_NE(req.params.find("protocol"), nullptr);
  // No id -> null id echoed.
  EXPECT_EQ(parse_request("{\"method\": \"list\"}").id.kind(),
            JsonValue::Kind::kNull);
}

TEST(ServeWireTest, ParseRequestErrorsCarryCodeAndId) {
  try {
    (void)parse_request("{\"id\": 3, \"method\": 9}");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), kErrInvalid);
    EXPECT_EQ(e.id().as_int(), 3);  // id recovered before the failure
  }
  try {
    (void)parse_request("garbage");
    FAIL() << "expected RpcError";
  } catch (const RpcError& e) {
    EXPECT_EQ(e.code(), kErrParse);
    EXPECT_EQ(e.id().kind(), JsonValue::Kind::kNull);
  }
}

TEST(ServeWireTest, DecodeSessionParamsValidatesTypesAndKeys) {
  const JsonValue params = JsonValue::parse(
      "{\"protocol\":\"ssme\",\"topology\":\" ring\\t8 \",\"seed\":5,"
      "\"threads\":2,\"engine\":\"vector\"}");
  const SessionRequest req = decode_session_params(params);
  EXPECT_EQ(req.protocol, "ssme");
  EXPECT_EQ(req.topology, "ring 8");  // canonicalized spelling
  EXPECT_EQ(req.spec.seed, 5u);
  EXPECT_EQ(req.spec.threads, 2u);
  EXPECT_EQ(req.spec.engine, EngineKind::kVector);

  for (const char* bad : {
           "{}",                                          // protocol missing
           "{\"protocol\":\"ssme\"}",                     // topology missing
           "{\"protocol\":5,\"topology\":\"ring 8\"}",    // wrong type
           "{\"protocol\":\"ssme\",\"topology\":\"ring 8\",\"seed\":\"x\"}",
           "{\"protocol\":\"ssme\",\"topology\":\"ring 8\",\"threads\":0}",
           "{\"protocol\":\"ssme\",\"topology\":\"ring 8\",\"bogus\":1}",
           "{\"protocol\":\"ssme\",\"topology\":\"  \"}",  // empty topology
           "{\"protocol\":\"ssme\",\"topology\":\"ring 8\",\"seed\":-1}",
       }) {
    EXPECT_THROW((void)decode_session_params(JsonValue::parse(bad)), RpcError)
        << "params: " << bad;
  }
}

TEST(ServeWireTest, ReplyRenderingIsLineFramedAndIdEchoing) {
  JsonValue result = JsonValue::object();
  result.as_object().emplace_back("ok", true);
  const std::string line = render_result_line(JsonValue("abc"), result);
  EXPECT_EQ(line, "{\"id\":\"abc\",\"result\":{\"ok\":true}}\n");
  // Raw paste renders byte-identically to the parsed path.
  EXPECT_EQ(render_result_line_raw(JsonValue("abc"), result.dump()), line);
  const std::string err =
      render_error_line(JsonValue(), kErrBusy, "queue full");
  EXPECT_EQ(err,
            "{\"id\":null,\"error\":{\"code\":\"busy\",\"message\":\"queue "
            "full\"}}\n");
}

}  // namespace
}  // namespace specstab::serve
