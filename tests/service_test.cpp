// Tests for the critical-section service layer: CS accounting matches the
// paper's definition (privileged AND activated), fairness metrics, and
// the K-period steady state of SSME under the synchronous daemon.
#include "core/service.hpp"

#include <gtest/gtest.h>

#include <vector>

#include "core/adversarial_configs.hpp"
#include "core/generalized_ssme.hpp"
#include "core/ssme.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace specstab {
namespace {

static_assert(PrivilegedProtocol<SsmeProtocol>);
static_assert(PrivilegedProtocol<GeneralizedSsmeProtocol>);

TEST(ServiceTest, CleanStartServesEveryVertexOncePerCycle) {
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  // Three full clock cycles: inside Gamma_1 under sd every vertex is
  // privileged exactly once per K steps.
  opt.max_steps = 3 * proto.params().k;
  const auto stats = run_service(g, proto, d, zero_config(g), opt);
  ASSERT_TRUE(stats.all_served());
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_EQ(stats.services[static_cast<std::size_t>(v)], 3) << v;
  }
}

TEST(ServiceTest, ServicePeriodIsKUnderSynchronousDaemon) {
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * proto.params().k;
  const auto stats = run_service(g, proto, d, zero_config(g), opt);
  // n services per K steps system-wide.
  EXPECT_NEAR(stats.mean_service_period(),
              static_cast<double>(proto.params().k) / g.n(),
              1.0);
}

TEST(ServiceTest, PerfectFairnessOnCleanStart) {
  const Graph g = make_path(7);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 5 * proto.params().k;
  const auto stats = run_service(g, proto, d, zero_config(g), opt);
  EXPECT_DOUBLE_EQ(stats.jain_index(), 1.0);
}

TEST(ServiceTest, CallbackSeesEveryCriticalSection) {
  const Graph g = make_ring(4);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 2 * proto.params().k;
  std::vector<std::pair<VertexId, StepIndex>> seen;
  const auto stats = run_service(
      g, proto, d, zero_config(g), opt,
      [&seen](VertexId v, StepIndex step) { seen.emplace_back(v, step); });
  EXPECT_EQ(static_cast<std::int64_t>(seen.size()), stats.total_services());
  for (const auto& [v, step] : seen) {
    EXPECT_GE(step, 0);
    EXPECT_LT(step, stats.steps);
  }
}

TEST(ServiceTest, MaxGapBoundedByClockCycleInSteadyState) {
  const Graph g = make_grid(3, 3);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 4 * proto.params().k;
  const auto stats = run_service(g, proto, d, zero_config(g), opt);
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_LE(stats.max_gap[static_cast<std::size_t>(v)],
              static_cast<StepIndex>(proto.params().k) + 1)
        << v;
  }
}

TEST(ServiceTest, RecoversServiceAfterArbitraryStart) {
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 6 * (proto.params().k + proto.params().alpha);
  for (std::uint64_t seed = 0; seed < 5; ++seed) {
    const auto stats = run_service(
        g, proto, d, random_config(g, proto.clock(), seed), opt);
    EXPECT_TRUE(stats.all_served()) << seed;
  }
}

TEST(ServiceTest, GeneralizedMinimalLayoutServesFaster) {
  // The minimal Gamma_1-safe layout has a smaller K, hence a shorter
  // service period — the latency the paper trades for its proof slack.
  const Graph g = make_ring(8);
  const SsmeProtocol paper = SsmeProtocol::for_graph(g);
  const GeneralizedSsmeProtocol minimal(GeneralizedSsmeParams::minimal_safe(
      g.n(), diameter(g), static_cast<ClockValue>(g.n())));
  SynchronousDaemon d1;
  SynchronousDaemon d2;
  RunOptions opt;
  opt.max_steps = 4 * paper.params().k;  // same horizon for both
  const auto stats_paper = run_service(g, paper, d1, zero_config(g), opt);
  const auto stats_min = run_service(g, minimal, d2, zero_config(g), opt);
  EXPECT_GT(stats_min.total_services(), stats_paper.total_services());
}

TEST(ServiceTest, JainIndexDetectsStarvation) {
  ServiceStats stats;
  stats.services = {10, 10, 10, 0};  // one starved vertex
  EXPECT_LT(stats.jain_index(), 1.0);
  EXPECT_FALSE(stats.all_served());
  stats.services = {7, 7, 7, 7};
  EXPECT_DOUBLE_EQ(stats.jain_index(), 1.0);
}

}  // namespace
}  // namespace specstab
