// Tests for the canonical SessionSpec codec and the serve cache key:
// round-trips, field-order/subset tolerance, malformed-input rejection,
// and the pinned FNV values that freeze the canonical spelling — a
// change to the canonical text or the hash silently invalidates every
// serve result cache, so it must be a *deliberate* change that edits
// these constants.
#include "sim/protocol_registry.hpp"

#include <gtest/gtest.h>

#include <stdexcept>
#include <string>

namespace specstab {
namespace {

TEST(SessionCodecTest, DefaultSpecCanonicalSpelling) {
  const SessionSpec spec;
  EXPECT_EQ(spec.to_canonical_string(),
            "daemon=synchronous,engine=incremental,init=,layout=auto,"
            "max_steps=0,perturb=none,seed=42,threads=1");
}

TEST(SessionCodecTest, RoundTripsThroughParse) {
  SessionSpec spec;
  spec.daemon = "bernoulli-0.25";
  spec.init = "random";
  spec.seed = 987654321012345ull;
  spec.max_steps = 5000;
  spec.engine = EngineKind::kParallel;
  spec.layout = ConfigLayout::kSoA;
  spec.threads = 16;
  spec.perturb = "periodic:period=8;k=2;epochs=3";
  const std::string text = spec.to_canonical_string();
  const SessionSpec parsed = SessionSpec::parse(text);
  // Round-trip fixed point: parse(format(x)) formats identically.
  EXPECT_EQ(parsed.to_canonical_string(), text);
  EXPECT_EQ(parsed.daemon, spec.daemon);
  EXPECT_EQ(parsed.init, spec.init);
  EXPECT_EQ(parsed.seed, spec.seed);
  EXPECT_EQ(parsed.max_steps, spec.max_steps);
  EXPECT_EQ(parsed.engine, spec.engine);
  EXPECT_EQ(parsed.layout, spec.layout);
  EXPECT_EQ(parsed.threads, spec.threads);
  // The fault text canonicalizes (start default spelled out).
  EXPECT_EQ(parsed.perturb, "periodic:period=8;k=2;epochs=3;start=8");
}

TEST(SessionCodecTest, ParseAcceptsAnyFieldOrderAndSubsets) {
  const SessionSpec shuffled = SessionSpec::parse(
      "threads=4,daemon=central-rr,seed=9,engine=vector");
  EXPECT_EQ(shuffled.daemon, "central-rr");
  EXPECT_EQ(shuffled.threads, 4u);
  EXPECT_EQ(shuffled.seed, 9u);
  EXPECT_EQ(shuffled.engine, EngineKind::kVector);
  // Unspecified fields keep their defaults.
  EXPECT_EQ(shuffled.layout, ConfigLayout::kAuto);
  EXPECT_EQ(shuffled.max_steps, 0);

  const SessionSpec empty = SessionSpec::parse("");
  EXPECT_EQ(empty.to_canonical_string(), SessionSpec{}.to_canonical_string());
}

TEST(SessionCodecTest, ParseRejectsMalformedInput) {
  EXPECT_THROW((void)SessionSpec::parse("bogus=1"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("daemon"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("seed=-3"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("seed=12x"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("threads=0"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("threads=9999"),
               std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("engine=warp"), std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("layout=rowwise"),
               std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("max_steps=-1"),
               std::invalid_argument);
  EXPECT_THROW((void)SessionSpec::parse("perturb=sometimes"),
               std::invalid_argument);
}

TEST(SessionCodecTest, PerturbCanonicalizesThroughFaultSpec) {
  const SessionSpec spec = SessionSpec::parse("perturb=periodic");
  // Defaults spelled out — one spelling per schedule.
  EXPECT_EQ(spec.perturb, "periodic:period=64;k=1;epochs=4;start=64");
  const SessionSpec none = SessionSpec::parse("perturb=none");
  EXPECT_EQ(none.perturb, "none");
}

// The pinned values: regenerate ONLY on a deliberate canonical-format
// change (and accept that committed serve caches go stale).
TEST(SessionCodecTest, CacheKeyIsStablePinned) {
  EXPECT_EQ(session_cache_key("ssme", "ring 8", SessionSpec{}),
            4865572124009062971ull);
  const SessionSpec spec = SessionSpec::parse(
      "seed=7,daemon=central-rr,engine=vector,"
      "perturb=periodic:period=8;k=2;epochs=3");
  EXPECT_EQ(session_cache_key("coloring", "torus 3 4", spec),
            2739087089154995984ull);
}

TEST(SessionCodecTest, CacheKeyDiscriminatesEveryComponent) {
  const SessionSpec base;
  const auto key = session_cache_key("ssme", "ring 8", base);
  EXPECT_NE(key, session_cache_key("unison", "ring 8", base));
  EXPECT_NE(key, session_cache_key("ssme", "ring 9", base));
  SessionSpec seeded = base;
  seeded.seed = 43;
  EXPECT_NE(key, session_cache_key("ssme", "ring 8", seeded));
  // The separator byte keeps component boundaries unambiguous: moving
  // a suffix between protocol and topology must change the key.
  EXPECT_NE(session_cache_key("ab", "c", base),
            session_cache_key("a", "bc", base));
}

TEST(SessionCodecTest, OutputShapeFlagsDoNotAffectIdentity) {
  SessionSpec traced;
  traced.record_trace = true;
  traced.meters_only = true;
  EXPECT_EQ(traced.to_canonical_string(), SessionSpec{}.to_canonical_string());
  EXPECT_EQ(session_cache_key("ssme", "ring 8", traced),
            session_cache_key("ssme", "ring 8", SessionSpec{}));
}

}  // namespace
}  // namespace specstab
