// Tests for the speculative-stabilization framework (Definition 4):
// conv_time as a function of the daemon, portfolio measurement, and the
// speculative separation of SSME.
#include "core/speculation.hpp"

#include <gtest/gtest.h>

#include "core/adversarial_configs.hpp"
#include "core/ssme.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"

namespace specstab {
namespace {

using Legit = std::function<bool(const Graph&, const Config<ClockValue>&)>;

Legit gamma1(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

Legit safe(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.mutex_safe(g, cfg);
  };
}

TEST(SpeculationTest, MeasureConvergenceTakesWorstOverConfigs) {
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 2000;
  opt.steps_after_convergence = 50;

  // Zero config converges in 0 steps; the witness takes ceil(diam/2).
  std::vector<Config<ClockValue>> inits = {zero_config(g),
                                           two_gradient_config(g, proto)};
  const auto m =
      measure_convergence(g, proto, d, inits, safe(proto), opt);
  EXPECT_EQ(m.daemon_name, "synchronous");
  EXPECT_EQ(m.runs, 2u);
  EXPECT_TRUE(m.all_converged);
  EXPECT_EQ(m.worst_steps, ssme_sync_bound(proto.params().diam));
}

TEST(SpeculationTest, StandardPortfolioComposition) {
  auto p = AdversaryPortfolio::standard(1);
  EXPECT_EQ(p.size(), 9u);
  EXPECT_EQ(p.daemon(0).name(), "synchronous");
  auto s = AdversaryPortfolio::synchronous_only();
  EXPECT_EQ(s.size(), 1u);
}

TEST(SpeculationTest, PortfolioWorstDominatesEveryRow) {
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  auto portfolio = AdversaryPortfolio::standard(7);
  RunOptions opt;
  opt.max_steps = 100000;
  opt.steps_after_convergence = 0;
  const auto inits = random_configs(g, proto.clock(), 3, 55);
  const auto pm =
      measure_portfolio(g, proto, portfolio, inits, gamma1(proto), opt);
  ASSERT_EQ(pm.rows.size(), portfolio.size());
  EXPECT_TRUE(pm.all_converged);
  for (const auto& row : pm.rows) {
    EXPECT_LE(row.worst_steps, pm.worst_steps);
    EXPECT_LE(row.worst_moves, pm.worst_moves);
  }
}

TEST(SpeculationTest, SsmeIsSdSpeculative) {
  // The Definition 4 separation on one instance: the synchronous
  // conv_time for spec_ME stays within ceil(diam/2) while asynchronous
  // schedules in the portfolio pay more (they are slower to Gamma_1, and
  // the witness keeps the sync cost at its maximum, which the bound
  // still caps).
  const Graph g = make_ring(8);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  RunOptions opt;
  opt.max_steps = 200000;
  opt.steps_after_convergence = 0;

  std::vector<Config<ClockValue>> inits =
      random_configs(g, proto.clock(), 4, 321);
  inits.push_back(two_gradient_config(g, proto));

  SynchronousDaemon sd;
  const auto sync =
      measure_convergence(g, proto, sd, inits, safe(proto), opt);
  ASSERT_TRUE(sync.all_converged);
  EXPECT_LE(sync.worst_steps, ssme_sync_bound(proto.params().diam));

  // Under Gamma_1 convergence (the ud stabilization target), async
  // central schedules need far more steps than ceil(diam/2).
  CentralRoundRobinDaemon rr;
  const auto async_rr =
      measure_convergence(g, proto, rr, inits, gamma1(proto), opt);
  ASSERT_TRUE(async_rr.all_converged);
  EXPECT_LE(async_rr.worst_steps,
            ssme_ud_bound(proto.params().n, proto.params().diam));
  EXPECT_GT(async_rr.worst_steps, sync.worst_steps);
}

TEST(SpeculationTest, VerdictArithmetic) {
  SpeculationVerdict v;
  v.weak_steps = 4;
  v.strong_steps = 40;
  EXPECT_DOUBLE_EQ(v.observed_speedup(), 10.0);
  v.weak_steps = 0;
  EXPECT_DOUBLE_EQ(v.observed_speedup(), 40.0);
}

TEST(SpeculationTest, NonConvergedRunsAreFlagged) {
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 1;  // far too few to reach Gamma_1 from a bad config
  const auto m = measure_convergence(
      g, proto, d, {random_config(g, proto.clock(), 9)}, gamma1(proto), opt);
  EXPECT_FALSE(m.all_converged);
}

}  // namespace
}  // namespace specstab
