// Convergence tests for SSME: Theorem 1 (self-stabilization under
// arbitrary schedules), Theorem 2 (sync stabilization <= ceil(diam/2)),
// liveness, and closure.
#include <gtest/gtest.h>

#include <functional>

#include "core/adversarial_configs.hpp"
#include "core/mutex_spec.hpp"
#include "core/ssme.hpp"
#include "core/theory.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

using Legit = std::function<bool(const Graph&, const Config<ClockValue>&)>;

Legit mutex_safe_pred(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.mutex_safe(g, cfg);
  };
}

Legit gamma1_pred(const SsmeProtocol& proto) {
  return [&proto](const Graph& g, const Config<ClockValue>& cfg) {
    return proto.legitimate(g, cfg);
  };
}

// Runs SSME under `daemon` from `init` and returns the full result with
// the mutex-safety predicate tracked.
RunResult<ClockValue> run_ssme(const Graph& g, const SsmeProtocol& proto,
                               Daemon& daemon, Config<ClockValue> init,
                               StepIndex max_steps) {
  RunOptions opt;
  opt.max_steps = max_steps;
  return run_execution(g, proto, daemon, std::move(init), opt,
                       mutex_safe_pred(proto));
}

TEST(SsmeConvergenceTest, Theorem2SyncBoundOnRings) {
  for (VertexId n : {4, 7, 10, 13}) {
    const Graph g = make_ring(n);
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    const std::int64_t bound = ssme_sync_bound(proto.params().diam);
    SynchronousDaemon d;
    for (std::uint64_t seed = 0; seed < 12; ++seed) {
      const auto init = random_config(g, proto.clock(), seed * 31 + n);
      const auto res = run_ssme(g, proto, d, init, 4000);
      ASSERT_TRUE(res.converged()) << "n=" << n << " seed=" << seed;
      EXPECT_LE(res.convergence_steps(), bound)
          << "n=" << n << " seed=" << seed;
    }
  }
}

TEST(SsmeConvergenceTest, Theorem2SyncBoundOnAssortedTopologies) {
  const std::vector<Graph> graphs = {
      make_path(9),        make_grid(3, 4),  make_star(8),
      make_binary_tree(15), make_petersen(), make_hypercube(3),
      make_complete(6),    make_wheel(7)};
  for (const Graph& g : graphs) {
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    const std::int64_t bound = ssme_sync_bound(proto.params().diam);
    SynchronousDaemon d;
    for (std::uint64_t seed = 100; seed < 108; ++seed) {
      const auto init = random_config(g, proto.clock(), seed);
      const auto res = run_ssme(g, proto, d, init, 8000);
      ASSERT_TRUE(res.converged()) << "n=" << g.n() << " seed=" << seed;
      EXPECT_LE(res.convergence_steps(), bound)
          << "n=" << g.n() << " diam=" << proto.params().diam
          << " seed=" << seed;
    }
  }
}

TEST(SsmeConvergenceTest, Theorem1StabilizesUnderAsynchronousSchedules) {
  const Graph g = make_ring(6);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const Legit gamma1 = gamma1_pred(proto);
  std::vector<std::unique_ptr<Daemon>> daemons;
  daemons.push_back(std::make_unique<CentralRoundRobinDaemon>());
  daemons.push_back(std::make_unique<CentralRandomDaemon>(11));
  daemons.push_back(std::make_unique<CentralMinIdDaemon>());
  daemons.push_back(std::make_unique<CentralMaxIdDaemon>());
  daemons.push_back(std::make_unique<DistributedBernoulliDaemon>(0.4, 12));
  daemons.push_back(std::make_unique<RandomSubsetDaemon>(13));
  for (auto& d : daemons) {
    for (std::uint64_t seed = 0; seed < 4; ++seed) {
      const auto init = random_config(g, proto.clock(), 777 + seed);
      RunOptions opt;
      opt.max_steps = 200000;
      opt.steps_after_convergence = 100;
      const auto res =
          run_execution(g, proto, *d, init, opt, gamma1);
      ASSERT_TRUE(res.converged())
          << d->name() << " seed=" << seed << " steps=" << res.steps;
      EXPECT_TRUE(proto.legitimate(g, res.final_config)) << d->name();
      EXPECT_TRUE(proto.mutex_safe(g, res.final_config)) << d->name();
    }
  }
}

TEST(SsmeConvergenceTest, GammaOneEntryImpliesNoLaterSafetyViolation) {
  // Closure in action: track both predicates; after Gamma_1 entry, the
  // mutex-safety violations must never reappear.
  const Graph g = make_grid(3, 3);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    const auto init = random_config(g, proto.clock(), seed ^ 0xabcdef);
    RunOptions opt;
    opt.max_steps = 2000;
    opt.record_trace = true;
    const auto res = run_execution(g, proto, d, init, opt, gamma1_pred(proto));
    ASSERT_TRUE(res.converged());
    const StepIndex entry = res.convergence_steps();
    for (std::size_t i = static_cast<std::size_t>(entry); i < res.trace.size();
         ++i) {
      EXPECT_TRUE(proto.legitimate(g, res.trace[i])) << "closure broken";
      EXPECT_TRUE(proto.mutex_safe(g, res.trace[i])) << "safety broken";
    }
  }
}

TEST(SsmeConvergenceTest, LivenessEveryVertexEntersCriticalSection) {
  const Graph g = make_path(4);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  MutexSpecMonitor monitor(g, proto);
  RunOptions opt;
  // Enough synchronous steps for several full clock laps: K per lap.
  opt.max_steps = proto.params().k * 5 + 4 * proto.params().n;
  const StepObserver<ClockValue> obs =
      [&monitor](StepIndex i, const Config<ClockValue>& cfg,
                 const std::vector<VertexId>& act) {
        monitor.on_action(i, cfg, act);
      };
  const auto res = run_execution(g, proto, d,
                                 random_config(g, proto.clock(), 5), RunOptions{opt},
                                 nullptr, obs);
  monitor.finish(res.steps, res.final_config);
  EXPECT_TRUE(monitor.report().liveness_at_least(3));
}

TEST(SsmeConvergenceTest, LivenessUnderAsynchronousDaemon) {
  const Graph g = make_ring(4);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  DistributedBernoulliDaemon d(0.6, 21);
  MutexSpecMonitor monitor(g, proto);
  RunOptions opt;
  opt.max_steps = proto.params().k * 40;
  const StepObserver<ClockValue> obs =
      [&monitor](StepIndex i, const Config<ClockValue>& cfg,
                 const std::vector<VertexId>& act) {
        monitor.on_action(i, cfg, act);
      };
  const auto res = run_execution(g, proto, d, zero_config(g), RunOptions{opt},
                                 nullptr, obs);
  monitor.finish(res.steps, res.final_config);
  EXPECT_EQ(monitor.report().last_safety_violation, -1);  // started in Gamma_1
  EXPECT_TRUE(monitor.report().liveness_at_least(2));
}

TEST(SsmeConvergenceTest, NeverTerminates) {
  // SSME has no terminal configuration: the unison ticks forever.
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 500;
  const auto res =
      run_execution(g, proto, d, random_config(g, proto.clock(), 3), opt);
  EXPECT_TRUE(res.hit_step_cap);
  EXPECT_FALSE(res.terminated);
}

TEST(SsmeConvergenceTest, Theorem3StepBoundUnderCentralSchedules) {
  // The ud bound is O(diam n^3); central adversarial schedules must stay
  // within it (they are ud schedules).
  for (VertexId n : {4, 6}) {
    const Graph g = make_ring(n);
    const SsmeProtocol proto = SsmeProtocol::for_graph(g);
    const std::int64_t bound =
        ssme_ud_bound(proto.params().n, proto.params().diam);
    std::vector<std::unique_ptr<Daemon>> daemons;
    daemons.push_back(std::make_unique<CentralMinIdDaemon>());
    daemons.push_back(std::make_unique<CentralMaxIdDaemon>());
    daemons.push_back(std::make_unique<CentralRoundRobinDaemon>());
    for (auto& d : daemons) {
      const auto init = random_config(g, proto.clock(), 0xfeed + n);
      RunOptions opt;
      opt.max_steps = bound + 10;
      opt.steps_after_convergence = 0;
      const auto res =
          run_execution(g, proto, *d, init, opt, gamma1_pred(proto));
      ASSERT_TRUE(res.converged()) << d->name();
      EXPECT_LE(res.convergence_steps(), bound) << d->name();
    }
  }
}

}  // namespace
}  // namespace specstab
