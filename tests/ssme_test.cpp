// Unit tests for SSME parameters and the privilege predicate (Section 4.1).
#include "core/ssme.hpp"

#include <gtest/gtest.h>

#include "graph/chordless.hpp"
#include "graph/cycle_space.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace specstab {
namespace {

TEST(SsmeParamsTest, ClockSizeFormula) {
  // K = (2n-1)(diam+1)+2.
  const SsmeParams p = SsmeParams::from_dimensions(5, 3);
  EXPECT_EQ(p.alpha, 5);
  EXPECT_EQ(p.k, 9 * 4 + 2);
  const SsmeParams q = SsmeParams::from_dimensions(1, 0);
  EXPECT_EQ(q.k, 3);
}

TEST(SsmeParamsTest, ForGraphComputesDiameter) {
  const Graph g = make_path(6);
  const SsmeParams p = SsmeParams::for_graph(g);
  EXPECT_EQ(p.n, 6);
  EXPECT_EQ(p.diam, 5);
  EXPECT_EQ(p.k, 11 * 6 + 2);
}

TEST(SsmeParamsTest, DisconnectedThrows) {
  Graph g(4, {{0, 1}, {2, 3}});
  EXPECT_THROW((void)SsmeParams::for_graph(g), std::invalid_argument);
}

TEST(SsmeParamsTest, PrivilegedValues) {
  // privileged_v = 2n + 2 diam id_v; the paper's two corner cases:
  // id 0 -> 2n, id n-1 -> (2n-2)(diam+1)+2.
  const SsmeParams p = SsmeParams::from_dimensions(7, 4);
  EXPECT_EQ(p.privileged_value(0), 14);
  EXPECT_EQ(p.privileged_value(6),
            (2 * 7 - 2) * (4 + 1) + 2);
  for (VertexId id = 0; id < 7; ++id) {
    EXPECT_LT(p.privileged_value(id), p.k);
    EXPECT_GE(p.privileged_value(id), 0);
  }
  EXPECT_THROW((void)p.privileged_value(7), std::out_of_range);
  EXPECT_THROW((void)p.privileged_value(-1), std::out_of_range);
}

TEST(SsmeParamsTest, PrivilegedValuesPairwiseFarApart) {
  // In Gamma_1 registers are pairwise within d_K <= diam; safety needs
  // distinct privileged values at ring distance > diam.
  for (VertexId n : {2, 3, 5, 8}) {
    for (VertexId diam : {1, 2, 4, 7}) {
      if (diam >= n) continue;
      const SsmeParams p = SsmeParams::from_dimensions(n, diam);
      const CherryClock clock = p.make_clock();
      for (VertexId a = 0; a < n; ++a) {
        for (VertexId b = a + 1; b < n; ++b) {
          EXPECT_GT(clock.ring_distance(p.privileged_value(a),
                                        p.privileged_value(b)),
                    diam)
              << "n=" << n << " diam=" << diam << " a=" << a << " b=" << b;
        }
      }
    }
  }
}

TEST(SsmeParamsTest, ParameterConstraintsOfBoulinierEtAl) {
  // alpha >= hole(g) - 2 and K > cyclo(g) must hold for every topology
  // (the paper's slack argument: hole, cyclo <= n < K, alpha = n).
  for (const Graph& g :
       {make_ring(9), make_path(7), make_complete(5), make_grid(3, 3),
        make_petersen(), make_wheel(6), make_random_connected(10, 0.3, 3)}) {
    const SsmeParams p = SsmeParams::for_graph(g);
    EXPECT_GE(p.alpha, longest_hole(g) - 2) << g.n();
    EXPECT_GT(p.k, cyclomatic_characteristic(g)) << g.n();
  }
}

TEST(SsmeProtocolTest, PrivilegePredicate) {
  const Graph g = make_path(3);  // n=3, diam=2
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  // privileged values: 6, 10, 14.
  Config<ClockValue> cfg{6, 0, 0};
  EXPECT_TRUE(proto.privileged(cfg, 0));
  EXPECT_FALSE(proto.privileged(cfg, 1));
  cfg = {0, 10, 14};
  EXPECT_FALSE(proto.privileged(cfg, 0));
  EXPECT_TRUE(proto.privileged(cfg, 1));
  EXPECT_TRUE(proto.privileged(cfg, 2));
  EXPECT_EQ(proto.count_privileged(g, cfg), 2);
  EXPECT_FALSE(proto.mutex_safe(g, cfg));
}

TEST(SsmeProtocolTest, GammaOneImpliesMutexSafety) {
  // The heart of Theorem 1: exhaustive check on a small instance that
  // every legitimate configuration has at most one privileged vertex.
  const Graph g = make_path(2);  // n=2, diam=1: K = 3*2+2 = 8
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const CherryClock& clock = proto.clock();
  for (ClockValue a = 0; a < clock.k(); ++a) {
    for (ClockValue b = 0; b < clock.k(); ++b) {
      const Config<ClockValue> cfg{a, b};
      if (proto.legitimate(g, cfg)) {
        EXPECT_TRUE(proto.mutex_safe(g, cfg)) << "a=" << a << " b=" << b;
      }
    }
  }
}

TEST(SsmeProtocolTest, EveryVertexPrivilegedSomewhereInGammaOne) {
  // Liveness needs every privileged value reachable inside Gamma_1: the
  // uniform configuration at v's privileged value is legitimate.
  const Graph g = make_ring(5);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  for (VertexId v = 0; v < g.n(); ++v) {
    const Config<ClockValue> cfg(
        static_cast<std::size_t>(g.n()),
        proto.params().privileged_value(v));
    EXPECT_TRUE(proto.legitimate(g, cfg));
    EXPECT_TRUE(proto.privileged(cfg, v));
    EXPECT_EQ(proto.count_privileged(g, cfg), 1);
  }
}

TEST(SsmeProtocolTest, DelegatesToUnison) {
  const Graph g = make_path(3);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const Config<ClockValue> cfg{0, 1, 1};
  EXPECT_EQ(proto.enabled(g, cfg, 0), proto.unison().enabled(g, cfg, 0));
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "NA");
  EXPECT_EQ(proto.apply(g, cfg, 0), 1);
}

TEST(SsmeProtocolTest, SingleVertexSystem) {
  const Graph g(1);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  EXPECT_EQ(proto.params().k, 3);
  // Privileged value 2n = 2.
  const Config<ClockValue> cfg{2};
  EXPECT_TRUE(proto.privileged(cfg, 0));
  EXPECT_TRUE(proto.mutex_safe(g, cfg));
}

}  // namespace
}  // namespace specstab
