// Test-only protocols exercising the engine machinery beyond what the
// shipped radius-1 protocols reach.
#ifndef SPECSTAB_TESTS_TEST_PROTOCOLS_HPP
#define SPECSTAB_TESTS_TEST_PROTOCOLS_HPP

#include <algorithm>
#include <cstdint>
#include <stdexcept>
#include <string_view>

#include "graph/graph.hpp"
#include "sim/types.hpp"

namespace specstab {

/// Two-hop max propagation: a vertex is enabled when some vertex within
/// two hops holds a larger value, and then adopts the maximum over its
/// 2-ball.  Converges to the all-global-max configuration (silent).  The
/// guard genuinely depends on states two hops away, so the protocol must
/// declare locality_radius() = 2 for the incremental engine to be
/// correct; constructing it with an understated radius lets tests verify
/// the locality cross-check fails loudly.
class TwoHopMaxProtocol {
 public:
  using State = std::int32_t;

  explicit TwoHopMaxProtocol(VertexId declared_radius = 2)
      : declared_radius_(declared_radius) {}

  [[nodiscard]] VertexId locality_radius() const noexcept {
    return declared_radius_;
  }

  [[nodiscard]] State ball_max(const Graph& g, const Config<State>& cfg,
                               VertexId v) const {
    State best = cfg[static_cast<std::size_t>(v)];
    for (VertexId u : g.neighbors(v)) {
      best = std::max(best, cfg[static_cast<std::size_t>(u)]);
      for (VertexId w : g.neighbors(u)) {
        best = std::max(best, cfg[static_cast<std::size_t>(w)]);
      }
    }
    return best;
  }

  // --- ProtocolConcept ---
  [[nodiscard]] bool enabled(const Graph& g, const Config<State>& cfg,
                             VertexId v) const {
    return cfg[static_cast<std::size_t>(v)] < ball_max(g, cfg, v);
  }
  [[nodiscard]] State apply(const Graph& g, const Config<State>& cfg,
                            VertexId v) const {
    if (!enabled(g, cfg, v)) {
      throw std::logic_error("TwoHopMaxProtocol::apply on disabled vertex");
    }
    return ball_max(g, cfg, v);
  }
  [[nodiscard]] std::string_view rule_name(const Graph&, const Config<State>&,
                                           VertexId) const {
    return "ADOPT-MAX-2";
  }

  /// Terminal == legitimate: every vertex already holds its 2-ball max.
  [[nodiscard]] bool legitimate(const Graph& g,
                                const Config<State>& cfg) const {
    for (VertexId v = 0; v < g.n(); ++v) {
      if (enabled(g, cfg, v)) return false;
    }
    return true;
  }

 private:
  VertexId declared_radius_;
};

}  // namespace specstab

#endif  // SPECSTAB_TESTS_TEST_PROTOCOLS_HPP
