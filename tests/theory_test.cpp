// Tests for the closed-form paper bounds.
#include "core/theory.hpp"

#include <gtest/gtest.h>

#include "graph/chordless.hpp"
#include "graph/generators.hpp"
#include "graph/properties.hpp"

namespace specstab {
namespace {

TEST(TheoryTest, SsmeSyncBoundIsCeilHalfDiameter) {
  EXPECT_EQ(ssme_sync_bound(0), 0);
  EXPECT_EQ(ssme_sync_bound(1), 1);
  EXPECT_EQ(ssme_sync_bound(2), 1);
  EXPECT_EQ(ssme_sync_bound(3), 2);
  EXPECT_EQ(ssme_sync_bound(8), 4);
  EXPECT_EQ(ssme_sync_bound(9), 5);
}

TEST(TheoryTest, LowerBoundEqualsUpperBound) {
  // Theorem 4 meets Theorem 2: SSME is optimal.
  for (VertexId d = 0; d <= 20; ++d) {
    EXPECT_EQ(mutex_sync_lower_bound(d), ssme_sync_bound(d));
  }
}

TEST(TheoryTest, SsmeUdBoundFormula) {
  // 2 diam n^3 + (n+1) n^2 + (n - 2 diam) n with alpha = n.
  EXPECT_EQ(ssme_ud_bound(4, 2), 2 * 2 * 64 + 5 * 16 + (4 - 4) * 4);
  EXPECT_EQ(ssme_ud_bound(10, 5), 2 * 5 * 1000 + 11 * 100 + 0);
}

TEST(TheoryTest, SsmeUdBoundDominatesSyncBound) {
  for (VertexId n : {2, 5, 10, 50}) {
    for (VertexId d = 1; d < n; ++d) {
      EXPECT_GT(ssme_ud_bound(n, d), ssme_sync_bound(d));
    }
  }
}

TEST(TheoryTest, ClockSizeFormula) {
  EXPECT_EQ(ssme_clock_size(1, 0), 3);
  EXPECT_EQ(ssme_clock_size(5, 3), 9 * 4 + 2);
  // K > n (the cyclo(g) <= n slack).
  for (VertexId n : {2, 7, 33}) {
    for (VertexId d = 0; d < n; ++d) {
      EXPECT_GT(ssme_clock_size(n, d), n);
    }
  }
}

TEST(TheoryTest, UnisonSyncBoundComposition) {
  // alpha + lcp + diam on a concrete instance: path(6), alpha = 6.
  const Graph g = make_path(6);
  EXPECT_EQ(unison_sync_bound(6, longest_chordless_path(g), diameter(g)),
            6 + 5 + 5);
}

TEST(TheoryTest, SectionThreeExampleBounds) {
  EXPECT_EQ(dijkstra_sync_bound(12), 12);
  EXPECT_EQ(dijkstra_ud_theta(12), 144);
  EXPECT_EQ(min_plus_one_sync_theta(7), 8);
  EXPECT_EQ(min_plus_one_ud_theta(9), 81);
  EXPECT_EQ(matching_sync_bound(10), 21);
  EXPECT_EQ(matching_ud_bound(10, 15), 70);
}

TEST(TheoryTest, SpeculationGapGrowsWithN) {
  // The ud/sd separation for SSME on rings: Theta(diam n^3) vs
  // Theta(diam): the ratio must grow.
  double prev_ratio = 0.0;
  for (VertexId n = 4; n <= 64; n *= 2) {
    const VertexId diam = n / 2;
    const double ratio =
        static_cast<double>(ssme_ud_bound(n, diam)) /
        static_cast<double>(ssme_sync_bound(diam));
    EXPECT_GT(ratio, prev_ratio);
    prev_ratio = ratio;
  }
}

}  // namespace
}  // namespace specstab
