// Tests for the unbounded-clock unison baseline (paper refs [6], [12]):
// convergence from arbitrary spreads, liveness, and the contrast with the
// bounded cherry-clock protocol.
#include "baselines/unbounded_unison.hpp"

#include <gtest/gtest.h>

#include <functional>
#include <random>

#include "core/speculation.hpp"
#include "graph/generators.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace specstab {
namespace {

static_assert(ProtocolConcept<UnboundedUnisonProtocol>,
              "unbounded unison must satisfy ProtocolConcept");

using State = UnboundedUnisonProtocol::State;

std::function<bool(const Graph&, const Config<State>&)> legit_of(
    const UnboundedUnisonProtocol& proto) {
  return [&proto](const Graph& g, const Config<State>& c) {
    return proto.legitimate(g, c);
  };
}

Config<State> random_clocks(const Graph& g, State lo, State hi,
                            std::uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::uniform_int_distribution<State> dist(lo, hi);
  Config<State> cfg(static_cast<std::size_t>(g.n()));
  for (auto& c : cfg) c = dist(rng);
  return cfg;
}

TEST(UnboundedUnisonTest, UniformConfigurationIsLegitimateAndLive) {
  const Graph g = make_ring(6);
  const UnboundedUnisonProtocol proto;
  Config<State> cfg(6, 42);
  EXPECT_TRUE(proto.legitimate(g, cfg));
  // All vertices are local minima: the synchronous step increments all.
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_TRUE(proto.enabled(g, cfg, v));
    EXPECT_EQ(proto.apply(g, cfg, v), 43);
  }
}

TEST(UnboundedUnisonTest, OnlyLocalMinimaAreEnabled) {
  const Graph g = make_path(3);
  const UnboundedUnisonProtocol proto;
  const Config<State> cfg = {5, 3, 7};
  EXPECT_FALSE(proto.enabled(g, cfg, 0));
  EXPECT_TRUE(proto.enabled(g, cfg, 1));
  EXPECT_FALSE(proto.enabled(g, cfg, 2));
  EXPECT_EQ(proto.rule_name(g, cfg, 1), "INC");
}

TEST(UnboundedUnisonTest, SpreadComputation) {
  EXPECT_EQ(UnboundedUnisonProtocol::spread({3, -4, 10}), 14);
  EXPECT_EQ(UnboundedUnisonProtocol::spread({7, 7, 7}), 0);
}

TEST(UnboundedUnisonTest, ConvergesFromArbitrarySpreads) {
  const UnboundedUnisonProtocol proto;
  for (const auto& g : {make_ring(8), make_path(9), make_grid(3, 3)}) {
    SynchronousDaemon d;
    for (std::uint64_t seed = 0; seed < 6; ++seed) {
      const auto init = random_clocks(g, -50, 50, seed);
      RunOptions opt;
      opt.max_steps =
          2 * UnboundedUnisonProtocol::spread(init) + 4 * g.n();
      opt.steps_after_convergence = 8;
      const auto res = run_execution(g, proto, d, init, opt, legit_of(proto));
      ASSERT_TRUE(res.converged()) << seed;
    }
  }
}

TEST(UnboundedUnisonTest, SynchronousStabilizationIsBoundedBySpread) {
  // The global minimum must climb to the initial maximum: conv_time <=
  // spread (synchronous steps) and cannot beat spread/2-ish on a path
  // gradient.  Check the upper bound.
  const Graph g = make_path(6);
  const UnboundedUnisonProtocol proto;
  SynchronousDaemon d;
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    const auto init = random_clocks(g, 0, 200, seed);
    RunOptions opt;
    opt.max_steps = 3 * (UnboundedUnisonProtocol::spread(init) + g.n());
    opt.steps_after_convergence = 0;
    const auto res = run_execution(g, proto, d, init, opt, legit_of(proto));
    ASSERT_TRUE(res.converged()) << seed;
    EXPECT_LE(res.convergence_steps(),
              UnboundedUnisonProtocol::spread(init) + g.n())
        << seed;
  }
}

TEST(UnboundedUnisonTest, LegitimacyIsClosedAndClocksKeepTicking) {
  const Graph g = make_ring(5);
  const UnboundedUnisonProtocol proto;
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 50;
  opt.record_trace = true;
  const auto res =
      run_execution(g, proto, d, Config<State>(5, 0), opt, legit_of(proto));
  for (const auto& cfg : res.trace) {
    EXPECT_TRUE(proto.legitimate(g, cfg));
  }
  // Liveness: every clock advanced.
  for (VertexId v = 0; v < g.n(); ++v) {
    EXPECT_GT(res.final_config[static_cast<std::size_t>(v)], 0) << v;
  }
}

TEST(UnboundedUnisonTest, ConvergesUnderAdversaryPortfolio) {
  const Graph g = make_grid(3, 3);
  const UnboundedUnisonProtocol proto;
  auto portfolio = AdversaryPortfolio::standard(0xdecaf);
  std::vector<Config<State>> inits;
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    inits.push_back(random_clocks(g, -20, 20, seed));
  }
  RunOptions opt;
  opt.max_steps = 5000;
  opt.steps_after_convergence = 4;
  const auto pm =
      measure_portfolio(g, proto, portfolio, inits, legit_of(proto), opt);
  EXPECT_TRUE(pm.all_converged);
}

TEST(UnboundedUnisonTest, StabilizationScalesWithFaultMagnitudeNotTopology) {
  // The contrast with the cherry clock: one corrupted register at +M
  // costs Theta(M) to reabsorb, however small the graph.
  const Graph g = make_ring(4);
  const UnboundedUnisonProtocol proto;
  StepIndex prev = 0;
  for (const State magnitude : {100, 200, 400}) {
    Config<State> init(4, 0);
    init[2] = magnitude;
    SynchronousDaemon d;
    RunOptions opt;
    opt.max_steps = 4 * magnitude;
    opt.steps_after_convergence = 0;
    const auto res = run_execution(g, proto, d, init, opt, legit_of(proto));
    ASSERT_TRUE(res.converged());
    EXPECT_GT(res.convergence_steps(), prev);
    EXPECT_GE(res.convergence_steps(), magnitude - 2);
    prev = res.convergence_steps();
  }
}

}  // namespace
}  // namespace specstab
