// Tests for the spec_AU trace checker.
#include "unison/unison_spec.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

TEST(UnisonSpecTest, AllLegitimateTrace) {
  const Graph g = make_path(2);
  const UnisonProtocol proto(CherryClock(2, 6));
  const std::vector<Config<ClockValue>> trace = {
      {0, 0}, {1, 1}, {2, 2}};
  const auto rep = check_unison_spec(g, proto, trace);
  EXPECT_EQ(rep.last_violation, -1);
  EXPECT_EQ(rep.stabilization_steps(), 0);
  EXPECT_EQ(rep.configurations_seen, 3);
  EXPECT_EQ(rep.increments, (std::vector<std::int64_t>{2, 2}));
  EXPECT_EQ(rep.min_increments(), 2);
}

TEST(UnisonSpecTest, ViolationIndexed) {
  const Graph g = make_path(2);
  const UnisonProtocol proto(CherryClock(2, 6));
  const std::vector<Config<ClockValue>> trace = {
      {0, 3},   // drift 3: violation
      {-2, -2}, // init values: violation
      {-1, -1}, // violation (init)
      {0, 0},   // legitimate
      {1, 1}};
  const auto rep = check_unison_spec(g, proto, trace);
  EXPECT_EQ(rep.last_violation, 2);
  EXPECT_EQ(rep.stabilization_steps(), 3);
}

TEST(UnisonSpecTest, CountsIncrementsAndResets) {
  const Graph g = make_path(2);
  const UnisonProtocol proto(CherryClock(2, 6));
  const std::vector<Config<ClockValue>> trace = {
      {0, 3},    // incomparable
      {1, -2},   // v0 incremented, v1 reset
      {1, -1},   // v1 climbed the tail
      {5, 0}};   // v0 jumped arbitrarily (neither), v1 incremented
  const auto rep = check_unison_spec(g, proto, trace);
  EXPECT_EQ(rep.increments[0], 1);
  EXPECT_EQ(rep.increments[1], 2);
  EXPECT_EQ(rep.resets[0], 0);
  EXPECT_EQ(rep.resets[1], 1);
}

TEST(UnisonSpecTest, WraparoundIsAnIncrementNotAReset) {
  const Graph g(1);
  const UnisonProtocol proto(CherryClock(2, 6));
  const std::vector<Config<ClockValue>> trace = {{5}, {0}};
  const auto rep = check_unison_spec(g, proto, trace);
  EXPECT_EQ(rep.increments[0], 1);
  EXPECT_EQ(rep.resets[0], 0);
}

TEST(UnisonSpecTest, ResetFromRingValueCounted) {
  const Graph g(1);
  const UnisonProtocol proto(CherryClock(2, 6));
  // 3 -> -2 is a reset (phi(3) = 4 != -2).
  const std::vector<Config<ClockValue>> trace = {{3}, {-2}};
  const auto rep = check_unison_spec(g, proto, trace);
  EXPECT_EQ(rep.resets[0], 1);
  EXPECT_EQ(rep.increments[0], 0);
}

TEST(UnisonSpecTest, EndToEndSynchronousRun) {
  const Graph g = make_ring(5);
  const UnisonProtocol proto(CherryClock(5, 7));  // alpha = n, K > cyclo
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 120;
  opt.record_trace = true;
  const auto res = run_execution(
      g, proto, d, Config<ClockValue>{3, 6, -5, 0, 2}, opt);
  const auto rep = check_unison_spec(g, proto, res.trace.materialize());
  // Converged and then kept incrementing: liveness.
  EXPECT_GE(rep.min_increments(), 5);
  // Stabilized within the [3] synchronous bound alpha + lcp + diam.
  EXPECT_LE(rep.stabilization_steps(), 5 + 3 + 2);
}

}  // namespace
}  // namespace specstab
