// Unit tests for the Boulinier-Petit-Villain asynchronous unison
// (Algorithm 1's rules NA/CA/RA).
#include "unison/unison.hpp"

#include <gtest/gtest.h>

#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"
#include "sim/protocol.hpp"

namespace specstab {
namespace {

UnisonProtocol small_unison() { return UnisonProtocol(CherryClock(3, 8)); }

TEST(UnisonTest, GuardsAreMutuallyExclusive) {
  const Graph g = make_ring(4);
  const UnisonProtocol proto(CherryClock(3, 8));
  // Exhaustive over a sample of configurations: at most one guard true.
  for (ClockValue a = -3; a < 8; ++a) {
    for (ClockValue b = -3; b < 8; ++b) {
      const Config<ClockValue> cfg{a, b, a, b};
      for (VertexId v = 0; v < 4; ++v) {
        const int guards = (proto.normal_step(g, cfg, v) ? 1 : 0) +
                           (proto.converge_step(g, cfg, v) ? 1 : 0) +
                           (proto.reset_init(g, cfg, v) ? 1 : 0);
        EXPECT_LE(guards, 1) << "a=" << a << " b=" << b << " v=" << v;
      }
    }
  }
}

TEST(UnisonTest, NormalStepAtLocalMinimum) {
  const Graph g = make_path(3);
  const UnisonProtocol proto = small_unison();
  // 1 - 2 - 2: vertex 0 is the local minimum.
  const Config<ClockValue> cfg{1, 2, 2};
  EXPECT_TRUE(proto.normal_step(g, cfg, 0));
  EXPECT_FALSE(proto.normal_step(g, cfg, 1));  // neighbour 0 is behind
  EXPECT_TRUE(proto.normal_step(g, cfg, 2));   // neighbour 1 is equal
  EXPECT_EQ(proto.apply(g, cfg, 0), 2);
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "NA");
}

TEST(UnisonTest, NormalStepWrapsAroundRing) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  // K-1 and 0 are locally comparable; K-1 is one behind.
  const Config<ClockValue> cfg{7, 0};
  EXPECT_TRUE(proto.normal_step(g, cfg, 0));
  EXPECT_FALSE(proto.normal_step(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 0), 0);  // phi(K-1) = 0
}

TEST(UnisonTest, ConvergeStepClimbsTail) {
  const Graph g = make_path(3);
  const UnisonProtocol proto = small_unison();
  // -3 - -2 - -1: everyone in init, vertex 0 minimal.
  const Config<ClockValue> cfg{-3, -2, -1};
  EXPECT_TRUE(proto.converge_step(g, cfg, 0));
  EXPECT_FALSE(proto.converge_step(g, cfg, 1));  // neighbour 0 below
  EXPECT_EQ(proto.apply(g, cfg, 0), -2);
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "CA");
}

TEST(UnisonTest, ConvergeStepBlockedByStabNeighbour) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  // Vertex 0 at -1, neighbour at 5 (stab, not locally comparable with
  // anything in init): CA requires ALL neighbours in init.
  const Config<ClockValue> cfg{-1, 5};
  EXPECT_FALSE(proto.converge_step(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 0));  // in init: no RA either
}

TEST(UnisonTest, ZeroWaitsForInitNeighbours) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  // r0 = 0 (graft point), neighbour at -2: 0 is not in init*, so no CA;
  // neighbour not in stab, so no NA; r0 in init, so no RA.
  const Config<ClockValue> cfg{0, -2};
  EXPECT_FALSE(proto.enabled(g, cfg, 0));
  // The init neighbour climbs instead.
  EXPECT_TRUE(proto.converge_step(g, cfg, 1));
}

TEST(UnisonTest, ResetOnIncomparableNeighbour) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  // 2 and 5 are not locally comparable (d_8(2,5) = 3).
  const Config<ClockValue> cfg{2, 5};
  EXPECT_TRUE(proto.reset_init(g, cfg, 0));
  EXPECT_TRUE(proto.reset_init(g, cfg, 1));
  EXPECT_EQ(proto.apply(g, cfg, 0), -3);  // reset to -alpha
  EXPECT_EQ(proto.rule_name(g, cfg, 0), "RA");
}

TEST(UnisonTest, NoResetForInitValues) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  // Vertex 0 in init (-2) next to an incomparable stab value: RA requires
  // r_v not in init, so vertex 0 must wait (only the stab vertex resets).
  const Config<ClockValue> cfg{-2, 5};
  EXPECT_FALSE(proto.reset_init(g, cfg, 0));
  EXPECT_FALSE(proto.enabled(g, cfg, 0));
  EXPECT_TRUE(proto.reset_init(g, cfg, 1));
}

TEST(UnisonTest, LegitimateConfigurations) {
  const Graph g = make_ring(4);
  const UnisonProtocol proto = small_unison();
  EXPECT_TRUE(proto.legitimate(g, Config<ClockValue>{0, 0, 0, 0}));
  EXPECT_TRUE(proto.legitimate(g, Config<ClockValue>{3, 4, 4, 3}));
  // wraparound drift 1:
  EXPECT_TRUE(proto.legitimate(g, Config<ClockValue>{7, 0, 0, 7}));
  EXPECT_FALSE(proto.legitimate(g, Config<ClockValue>{3, 5, 3, 3}));  // drift 2
  // init value:
  EXPECT_FALSE(proto.legitimate(g, Config<ClockValue>{-1, 0, 0, 0}));
}

TEST(UnisonTest, WellFormed) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  EXPECT_TRUE(proto.well_formed(g, Config<ClockValue>{-3, 7}));
  EXPECT_FALSE(proto.well_formed(g, Config<ClockValue>{-4, 0}));
  EXPECT_FALSE(proto.well_formed(g, Config<ClockValue>{0, 8}));
  EXPECT_FALSE(proto.well_formed(g, Config<ClockValue>{0}));  // wrong arity
}

TEST(UnisonTest, SingleVertexAlwaysTicksForever) {
  const Graph g(1);
  const UnisonProtocol proto = small_unison();
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 20;
  auto res = run_execution(g, proto, d, Config<ClockValue>{-3}, opt);
  EXPECT_TRUE(res.hit_step_cap);  // never terminates: ticks forever
  // -3 +20 increments: 3 tail steps then 17 ring steps: (17) mod 8 = 1.
  EXPECT_EQ(res.final_config[0], 1);
}

TEST(UnisonTest, GammaOneIsClosedUnderSynchronousSteps) {
  const Graph g = make_ring(5);
  const UnisonProtocol proto = small_unison();
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 50;
  opt.record_trace = true;
  const auto res = run_execution(g, proto, d,
                                 Config<ClockValue>{0, 1, 1, 1, 0}, opt);
  for (const auto& cfg : res.trace) {
    EXPECT_TRUE(proto.legitimate(g, cfg));
  }
}

TEST(UnisonTest, ConvergesFromArbitraryConfigurationUnderSync) {
  const Graph g = make_ring(6);
  const UnisonProtocol proto(CherryClock(6, 8));  // alpha = n >= hole - 2
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 500;
  const std::function<bool(const Graph&, const Config<ClockValue>&)> legit =
      [&proto](const Graph& gg, const Config<ClockValue>& c) {
        return proto.legitimate(gg, c);
      };
  const Config<ClockValue> bad{5, 1, -6, 3, 7, 0};
  const auto res = run_execution(g, proto, d, bad, opt, legit);
  EXPECT_TRUE(res.converged());
  EXPECT_TRUE(proto.legitimate(g, res.final_config));
}

TEST(UnisonTest, ApplyOnDisabledVertexThrows) {
  const Graph g = make_path(2);
  const UnisonProtocol proto = small_unison();
  const Config<ClockValue> cfg{0, -2};  // vertex 0 disabled (see above)
  EXPECT_THROW((void)proto.apply(g, cfg, 0), std::logic_error);
}

}  // namespace
}  // namespace specstab
