// Tests for trace visualization helpers.
#include "sim/visualize.hpp"

#include <gtest/gtest.h>

#include <algorithm>

#include "core/adversarial_configs.hpp"
#include "graph/generators.hpp"
#include "sim/daemon.hpp"
#include "sim/engine.hpp"

namespace specstab {
namespace {

TEST(VisualizeTest, WaveMarksPrivilegedAndViolations) {
  const Graph g = make_path(3);  // privileged values: 6, 10, 14
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  const std::vector<Config<ClockValue>> trace = {
      {5, 5, 5},     // legitimate, nobody privileged
      {6, 10, 5},    // two privileged: violation
      {-3, 5, 5},    // init value: not in Gamma_1
  };
  const std::string wave = render_clock_wave(g, proto, trace);
  EXPECT_NE(wave.find("[6]"), std::string::npos);
  EXPECT_NE(wave.find("[10]"), std::string::npos);
  EXPECT_NE(wave.find("!! double privilege"), std::string::npos);
  EXPECT_NE(wave.find("-3"), std::string::npos);
  EXPECT_NE(wave.find("~"), std::string::npos);
  EXPECT_NE(wave.find("v0"), std::string::npos);
  EXPECT_NE(wave.find("v2"), std::string::npos);
}

TEST(VisualizeTest, LongTracesAreElided) {
  const Graph g = make_path(2);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  std::vector<Config<ClockValue>> trace(100, Config<ClockValue>{0, 0});
  WaveRenderOptions opt;
  opt.max_rows = 10;
  const std::string wave = render_clock_wave(g, proto, trace, opt);
  EXPECT_NE(wave.find("configurations elided"), std::string::npos);
  // Header + separator + 10 rows + 1 elision row.
  EXPECT_LE(std::count(wave.begin(), wave.end(), '\n'), 14);
}

TEST(VisualizeTest, CsvShape) {
  const std::vector<Config<ClockValue>> trace = {{1, 2}, {3, 4}};
  EXPECT_EQ(trace_to_csv(trace), "step,v0,v1\n0,1,2\n1,3,4\n");
  EXPECT_EQ(trace_to_csv({}), "step\n");
}

TEST(VisualizeTest, EndToEndWitnessWave) {
  // Render the Theorem 4 witness execution; the double-privilege marker
  // must appear exactly once (at gamma_t).
  const Graph g = make_path(8);
  const SsmeProtocol proto = SsmeProtocol::for_graph(g);
  SynchronousDaemon d;
  RunOptions opt;
  opt.max_steps = 12;
  opt.record_trace = true;
  const auto res =
      run_execution(g, proto, d, two_gradient_config(g, proto), opt);
  const std::string wave = render_clock_wave(g, proto, res.trace.materialize());
  std::size_t count = 0;
  for (std::size_t pos = wave.find("!!"); pos != std::string::npos;
       pos = wave.find("!!", pos + 1)) {
    ++count;
  }
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace specstab
