// Parsing and comparison logic of check_bench_regression, factored out
// so tests/bench_regression_test.cpp can unit-test the gate without
// spawning the tool.  The tool's main() is a thin wrapper: read the two
// files, call compare(), print the report, map `regressed` to exit 2.
//
// Errors are thrown as std::invalid_argument (the tool converts them to
// its exit-1 die()); the comparison itself never throws — every
// comparable row contributes a report line and a verdict.
#ifndef SPECSTAB_TOOLS_BENCH_REGRESSION_LIB_HPP
#define SPECSTAB_TOOLS_BENCH_REGRESSION_LIB_HPP

#include <cctype>
#include <cstddef>
#include <optional>
#include <sstream>
#include <stdexcept>
#include <string>
#include <utility>
#include <vector>

namespace specstab::benchgate {

struct Row {
  std::string name;
  long long steps = 0;
  double reference_ms = 0.0;
  double speedup = 0.0;
  /// Vector-engine speedup, absent when the row never timed the vector
  /// engine (parallel scaling and perturbed rows omit the key).  A
  /// present-but-zero value is rejected at parse time: an unmeasured
  /// metric must be omitted, not written as a zero posing as data.
  std::optional<double> vector_speedup;
};

struct BenchFile {
  std::string mode;
  double campaign_speedup = 0.0;
  std::size_t campaign_scenarios = 0;
  std::vector<Row> micro;
};

namespace detail {

[[noreturn]] inline void fail(const std::string& message) {
  throw std::invalid_argument(message);
}

/// Value of `"key": <token>` inside `text`, starting at `from`.  Returns
/// the raw token (number) or the quoted content (string).
inline std::string raw_value(const std::string& text, const std::string& key,
                             std::size_t from, const std::string& where) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) fail("missing key '" + key + "' in " + where);
  std::size_t pos = at + needle.size();
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos >= text.size()) fail("truncated value for '" + key + "'");
  if (text[pos] == '"') {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) {
      fail("unterminated string for '" + key + "'");
    }
    return text.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-' || text[end] == '+' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E')) {
    ++end;
  }
  if (end == pos) fail("bad value for '" + key + "' in " + where);
  return text.substr(pos, end - pos);
}

inline double num_value(const std::string& text, const std::string& key,
                        std::size_t from, const std::string& where) {
  const std::string raw = raw_value(text, key, from, where);
  try {
    std::size_t used = 0;
    const double value = std::stod(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    fail("non-numeric '" + key + "' in " + where + ": " + raw);
  }
}

/// Like num_value but tolerates an absent key (an explicitly unmeasured
/// metric).  A key that IS present must still parse as a number.
inline std::optional<double> opt_num_value(const std::string& text,
                                           const std::string& key,
                                           const std::string& where) {
  if (text.find("\"" + key + "\":") == std::string::npos) return std::nullopt;
  return num_value(text, key, 0, where);
}

/// Speedup metrics are ratios of two wall-clock timings, so a true
/// measurement can never be exactly zero — a present zero means an
/// unmeasured column was serialized as data, and the gate would compare
/// garbage.  Fails loudly instead.
inline void reject_zero_measurement(const std::string& key, double value,
                                    const std::string& where) {
  if (value == 0.0) {
    fail("zero '" + key + "' in " + where +
         " claims to be a measurement — omit unmeasured metrics");
  }
}

}  // namespace detail

/// Parses the flat JSON bench_engine writes (one "campaign" object, one
/// "micro" array of flat objects); anything else throws so format drift
/// cannot silently disable the gate.  `where` labels error messages
/// (typically the file path).
inline BenchFile parse_bench_json(const std::string& text,
                                  const std::string& where) {
  using detail::fail;
  BenchFile out;
  out.mode = detail::raw_value(text, "mode", 0, where);

  // Every object is sliced out before key extraction so a key missing
  // from one object fails loudly instead of silently matching the next
  // object's value.
  const std::size_t campaign_at = text.find("\"campaign\":");
  if (campaign_at == std::string::npos) fail("no campaign object in " + where);
  const std::size_t campaign_end = text.find('}', campaign_at);
  if (campaign_end == std::string::npos) {
    fail("unbalanced campaign object in " + where);
  }
  const std::string campaign =
      text.substr(campaign_at, campaign_end - campaign_at + 1);
  out.campaign_speedup = detail::num_value(campaign, "speedup", 0, where);
  out.campaign_scenarios = static_cast<std::size_t>(
      detail::num_value(campaign, "scenarios", 0, where));

  const std::size_t micro_at = text.find("\"micro\":");
  if (micro_at == std::string::npos) fail("no micro array in " + where);
  std::size_t pos = micro_at;
  for (;;) {
    const std::size_t open = text.find('{', pos + 1);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) fail("unbalanced micro object in " + where);
    const std::string obj_where =
        where + " micro[" + std::to_string(out.micro.size()) + "]";
    const std::string obj = text.substr(open, close - open + 1);
    Row row;
    row.name = detail::raw_value(obj, "name", 0, obj_where);
    row.steps =
        static_cast<long long>(detail::num_value(obj, "steps", 0, obj_where));
    row.reference_ms = detail::num_value(obj, "reference_ms", 0, obj_where);
    row.speedup = detail::num_value(obj, "speedup", 0, obj_where);
    detail::reject_zero_measurement("speedup", row.speedup, obj_where);
    row.vector_speedup = detail::opt_num_value(obj, "vector_speedup",
                                               obj_where);
    if (row.vector_speedup) {
      detail::reject_zero_measurement("vector_speedup", *row.vector_speedup,
                                      obj_where);
    }
    out.micro.push_back(std::move(row));
    pos = close;
  }
  if (out.micro.empty()) fail("empty micro array in " + where);
  return out;
}

[[nodiscard]] inline std::optional<Row> find_row(const BenchFile& file,
                                                 const std::string& name) {
  for (const auto& row : file.micro) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

struct GateOptions {
  double tolerance = 0.30;  ///< relative speedup drop allowed
  /// Micro rows below either floor are setup-dominated timer noise and
  /// skipped rather than gated.
  long long min_steps = 500;
  double min_ms = 0.25;
};

struct GateOutcome {
  bool regressed = false;
  std::vector<std::string> lines;  ///< one report line per decision
};

/// The gate itself.  Throws std::invalid_argument on a mode mismatch
/// (smoke vs full snapshots are not comparable); otherwise every verdict
/// — including a baseline row missing from the current run and a
/// campaign scenario-count change (a stale snapshot, not a skip) — is a
/// FAIL line with `regressed` set.
inline GateOutcome compare(const BenchFile& baseline, const BenchFile& current,
                           const GateOptions& opt) {
  if (baseline.mode != current.mode) {
    detail::fail("mode mismatch: baseline is '" + baseline.mode +
                 "', current is '" + current.mode +
                 "' — compare like with like");
  }

  GateOutcome out;
  const auto check = [&](const std::string& name, double base, double cur) {
    const double floor = base * (1.0 - opt.tolerance);
    const bool bad = cur < floor;
    std::ostringstream os;
    os << (bad ? "FAIL " : "ok   ") << name << ": speedup " << cur
       << " vs baseline " << base << " (floor " << floor << ")";
    out.lines.push_back(os.str());
    out.regressed = out.regressed || bad;
  };

  if (baseline.campaign_scenarios == current.campaign_scenarios) {
    check("campaign/thm3-preset", baseline.campaign_speedup,
          current.campaign_speedup);
  } else {
    // A changed scenario count means the committed snapshot no longer
    // matches the preset the fresh run executed: the snapshot must be
    // regenerated, and silently skipping would leave the campaign
    // speedup ungated forever.
    out.lines.push_back(
        "FAIL campaign/thm3-preset: scenario count changed (" +
        std::to_string(baseline.campaign_scenarios) + " -> " +
        std::to_string(current.campaign_scenarios) +
        ") — regenerate the committed snapshot");
    out.regressed = true;
  }

  for (const auto& base_row : baseline.micro) {
    const auto cur_row = find_row(current, base_row.name);
    if (!cur_row) {
      out.lines.push_back("FAIL " + base_row.name +
                          ": row missing from current");
      out.regressed = true;
      continue;
    }
    if (base_row.steps < opt.min_steps ||
        base_row.reference_ms < opt.min_ms) {
      std::ostringstream os;
      os << "skip " << base_row.name << ": noise-dominated (steps "
         << base_row.steps << ", ref " << base_row.reference_ms << " ms)";
      out.lines.push_back(os.str());
      continue;
    }
    check(base_row.name, base_row.speedup, cur_row->speedup);
    // The vector engine is gated wherever the baseline measured it; a
    // current run that stopped measuring the metric is a stale-format
    // FAIL, not a skip.  A metric new in the current run (absent from
    // the baseline) passes silently until the snapshot is regenerated.
    if (base_row.vector_speedup) {
      if (!cur_row->vector_speedup) {
        out.lines.push_back("FAIL " + base_row.name +
                            ": vector_speedup missing from current");
        out.regressed = true;
      } else {
        check(base_row.name + " (vector)", *base_row.vector_speedup,
              *cur_row->vector_speedup);
      }
    }
  }
  return out;
}

// --- serve snapshots (BENCH_serve.json) ---------------------------------
//
// The serve bench gates on `warm_speedup` — warm-cache over cold-cache
// sessions/sec at the same worker-thread count.  Like the engine gate's
// speedup keys, the ratio of two runs of the same binary on the same
// host transfers across CI machines where absolute sessions/sec cannot.

struct ServeRow {
  std::string name;
  std::size_t sessions = 0;
  double warm_speedup = 0.0;
};

struct ServeBenchFile {
  std::string mode;
  std::size_t sessions_per_phase = 0;
  std::vector<ServeRow> rows;
};

/// Parses the flat JSON bench_serve writes; rejects snapshots of any
/// other bench (the "bench" tag) so the two gates cannot be cross-fed.
inline ServeBenchFile parse_serve_bench_json(const std::string& text,
                                             const std::string& where) {
  using detail::fail;
  const std::string bench = detail::raw_value(text, "bench", 0, where);
  if (bench != "serve") {
    fail("not a serve snapshot (bench '" + bench + "') in " + where);
  }
  ServeBenchFile out;
  out.mode = detail::raw_value(text, "mode", 0, where);
  out.sessions_per_phase = static_cast<std::size_t>(
      detail::num_value(text, "sessions_per_phase", 0, where));

  const std::size_t rows_at = text.find("\"rows\":");
  if (rows_at == std::string::npos) fail("no rows array in " + where);
  std::size_t pos = rows_at;
  for (;;) {
    const std::size_t open = text.find('{', pos + 1);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) fail("unbalanced row object in " + where);
    const std::string obj_where =
        where + " rows[" + std::to_string(out.rows.size()) + "]";
    const std::string obj = text.substr(open, close - open + 1);
    ServeRow row;
    row.name = detail::raw_value(obj, "name", 0, obj_where);
    row.sessions = static_cast<std::size_t>(
        detail::num_value(obj, "sessions", 0, obj_where));
    row.warm_speedup = detail::num_value(obj, "warm_speedup", 0, obj_where);
    out.rows.push_back(std::move(row));
    pos = close;
  }
  if (out.rows.empty()) fail("empty rows array in " + where);
  return out;
}

[[nodiscard]] inline std::optional<ServeRow> find_serve_row(
    const ServeBenchFile& file, const std::string& name) {
  for (const auto& row : file.rows) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

/// Serve-snapshot gate: every baseline row's warm_speedup must hold
/// within the tolerance.  Mode mismatches throw; a missing row or a
/// changed per-phase session count (the workload itself moved) FAILs —
/// the committed snapshot is stale and must be regenerated, the gate
/// never quietly narrows.
inline GateOutcome compare_serve(const ServeBenchFile& baseline,
                                 const ServeBenchFile& current,
                                 const GateOptions& opt) {
  if (baseline.mode != current.mode) {
    detail::fail("mode mismatch: baseline is '" + baseline.mode +
                 "', current is '" + current.mode +
                 "' — compare like with like");
  }
  GateOutcome out;
  if (baseline.sessions_per_phase != current.sessions_per_phase) {
    out.lines.push_back(
        "FAIL serve: sessions_per_phase changed (" +
        std::to_string(baseline.sessions_per_phase) + " -> " +
        std::to_string(current.sessions_per_phase) +
        ") — regenerate the committed snapshot");
    out.regressed = true;
  }
  for (const auto& base_row : baseline.rows) {
    const auto cur_row = find_serve_row(current, base_row.name);
    if (!cur_row) {
      out.lines.push_back("FAIL " + base_row.name +
                          ": row missing from current");
      out.regressed = true;
      continue;
    }
    const double floor = base_row.warm_speedup * (1.0 - opt.tolerance);
    const bool bad = cur_row->warm_speedup < floor;
    std::ostringstream os;
    os << (bad ? "FAIL " : "ok   ") << base_row.name << ": warm_speedup "
       << cur_row->warm_speedup << " vs baseline " << base_row.warm_speedup
       << " (floor " << floor << ")";
    out.lines.push_back(os.str());
    out.regressed = out.regressed || bad;
  }
  return out;
}

}  // namespace specstab::benchgate

#endif  // SPECSTAB_TOOLS_BENCH_REGRESSION_LIB_HPP
