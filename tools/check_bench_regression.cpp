// check_bench_regression — CI gate over BENCH_engine.json and (with
// --serve) BENCH_serve.json snapshots.
//
// Compares the per-row incremental-vs-reference speedups of a fresh
// bench_engine run against a committed baseline and fails (exit 2) when
// any comparable row regressed beyond the tolerance:
//
//   check_bench_regression BASELINE.json CURRENT.json
//       [--serve]         gate a BENCH_serve.json pair instead: the
//                         compared ratio is each row's warm_speedup
//                         (warm-cache over cold-cache sessions/sec)
//       [--tolerance T]   relative speedup drop allowed (default 0.30)
//       [--min-steps N]   skip micro rows whose baseline executed fewer
//                         steps (default 500: sub-hundred-step rows are
//                         setup-dominated and pure timer noise)
//       [--min-ms MS]     skip micro rows whose baseline reference time
//                         is below MS (default 0.25 ms, same reason)
//
// Only speedup *ratios* are compared, never absolute milliseconds — the
// ratio of two timings from the same binary on the same host is the one
// number that transfers across CI machines.  Both files must record the
// same mode (smoke vs full); the CI gate measures in full mode and
// compares against the committed full-mode BENCH_engine.json snapshot
// (smoke rows are sub-millisecond and too noisy to gate on).
//
// Rows present in the baseline but missing from the fresh run FAIL, and
// so does a campaign scenario-count change: both mean the committed
// snapshot is stale and must be regenerated, not that the gate should
// quietly narrow.  Parsing and comparison live in bench_regression_lib.hpp
// (unit-tested by tests/bench_regression_test.cpp).
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_regression_lib.hpp"

namespace {

[[noreturn]] void die(const std::string& message) {
  std::cerr << "check_bench_regression: " << message << "\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

}  // namespace

int main(int argc, char** argv) {
  namespace gate = specstab::benchgate;
  std::vector<std::string> paths;
  gate::GateOptions opt;
  bool serve = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      opt.tolerance = std::atof(argv[++i]);
    } else if (arg == "--min-steps" && i + 1 < argc) {
      opt.min_steps = std::atoll(argv[++i]);
    } else if (arg == "--min-ms" && i + 1 < argc) {
      opt.min_ms = std::atof(argv[++i]);
    } else if (arg == "--serve") {
      serve = true;
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      std::cerr << "usage: check_bench_regression BASELINE.json CURRENT.json"
                   " [--serve] [--tolerance T] [--min-steps N] [--min-ms MS]\n";
      return 1;
    }
  }
  if (paths.size() != 2) die("need exactly BASELINE.json and CURRENT.json");

  try {
    gate::GateOutcome outcome;
    if (serve) {
      // BENCH_serve.json: gate the warm/cold throughput ratios.
      const gate::ServeBenchFile baseline =
          gate::parse_serve_bench_json(read_file(paths[0]), paths[0]);
      const gate::ServeBenchFile current =
          gate::parse_serve_bench_json(read_file(paths[1]), paths[1]);
      outcome = gate::compare_serve(baseline, current, opt);
    } else {
      const gate::BenchFile baseline =
          gate::parse_bench_json(read_file(paths[0]), paths[0]);
      const gate::BenchFile current =
          gate::parse_bench_json(read_file(paths[1]), paths[1]);
      outcome = gate::compare(baseline, current, opt);
    }
    for (const auto& line : outcome.lines) std::cout << line << "\n";
    if (outcome.regressed) {
      std::cerr << "\nbench regression beyond " << opt.tolerance * 100
                << "% tolerance — see FAIL rows above\n";
      return 2;
    }
    std::cout << "\nno bench regression (tolerance " << opt.tolerance * 100
              << "%)\n";
    return 0;
  } catch (const std::invalid_argument& e) {
    die(e.what());
  }
}
