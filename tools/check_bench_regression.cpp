// check_bench_regression — CI gate over BENCH_engine.json snapshots.
//
// Compares the per-row incremental-vs-reference speedups of a fresh
// bench_engine run against a committed baseline and fails (exit 2) when
// any comparable row regressed beyond the tolerance:
//
//   check_bench_regression BASELINE.json CURRENT.json
//       [--tolerance T]   relative speedup drop allowed (default 0.30)
//       [--min-steps N]   skip micro rows whose baseline executed fewer
//                         steps (default 500: sub-hundred-step rows are
//                         setup-dominated and pure timer noise)
//       [--min-ms MS]     skip micro rows whose baseline reference time
//                         is below MS (default 0.25 ms, same reason)
//
// Only speedup *ratios* are compared, never absolute milliseconds — the
// ratio of two timings from the same binary on the same host is the one
// number that transfers across CI machines.  Both files must record the
// same mode (smoke vs full); the CI gate measures in full mode and
// compares against the committed full-mode BENCH_engine.json snapshot
// (smoke rows are sub-millisecond and too noisy to gate on).
//
// The parser covers exactly the flat JSON bench_engine writes (one
// "campaign" object, one "micro" array of flat objects); anything else
// is a hard error so format drift cannot silently disable the gate.
#include <cctype>
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

namespace {

struct Row {
  std::string name;
  long long steps = 0;
  double reference_ms = 0.0;
  double speedup = 0.0;
};

struct BenchFile {
  std::string mode;
  double campaign_speedup = 0.0;
  std::size_t campaign_scenarios = 0;
  std::vector<Row> micro;
};

[[noreturn]] void die(const std::string& message) {
  std::cerr << "check_bench_regression: " << message << "\n";
  std::exit(1);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) die("cannot open " + path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

/// Value of `"key": <token>` inside `text`, starting at `from`.  Returns
/// the raw token (number) or the quoted content (string).
std::string raw_value(const std::string& text, const std::string& key,
                      std::size_t from, const std::string& where) {
  const std::string needle = "\"" + key + "\":";
  const std::size_t at = text.find(needle, from);
  if (at == std::string::npos) die("missing key '" + key + "' in " + where);
  std::size_t pos = at + needle.size();
  while (pos < text.size() && text[pos] == ' ') ++pos;
  if (pos >= text.size()) die("truncated value for '" + key + "'");
  if (text[pos] == '"') {
    const std::size_t end = text.find('"', pos + 1);
    if (end == std::string::npos) die("unterminated string for '" + key + "'");
    return text.substr(pos + 1, end - pos - 1);
  }
  std::size_t end = pos;
  while (end < text.size() &&
         (std::isdigit(static_cast<unsigned char>(text[end])) ||
          text[end] == '-' || text[end] == '+' || text[end] == '.' ||
          text[end] == 'e' || text[end] == 'E')) {
    ++end;
  }
  if (end == pos) die("bad value for '" + key + "' in " + where);
  return text.substr(pos, end - pos);
}

double num_value(const std::string& text, const std::string& key,
                 std::size_t from, const std::string& where) {
  const std::string raw = raw_value(text, key, from, where);
  try {
    std::size_t used = 0;
    const double value = std::stod(raw, &used);
    if (used != raw.size()) throw std::invalid_argument(raw);
    return value;
  } catch (const std::exception&) {
    die("non-numeric '" + key + "' in " + where + ": " + raw);
  }
}

BenchFile parse(const std::string& path) {
  const std::string text = read_file(path);
  BenchFile out;
  out.mode = raw_value(text, "mode", 0, path);

  // Every object is sliced out before key extraction so a key missing
  // from one object dies loudly instead of silently matching the next
  // object's value.
  const std::size_t campaign_at = text.find("\"campaign\":");
  if (campaign_at == std::string::npos) die("no campaign object in " + path);
  const std::size_t campaign_end = text.find('}', campaign_at);
  if (campaign_end == std::string::npos) {
    die("unbalanced campaign object in " + path);
  }
  const std::string campaign =
      text.substr(campaign_at, campaign_end - campaign_at + 1);
  out.campaign_speedup = num_value(campaign, "speedup", 0, path);
  out.campaign_scenarios =
      static_cast<std::size_t>(num_value(campaign, "scenarios", 0, path));

  const std::size_t micro_at = text.find("\"micro\":");
  if (micro_at == std::string::npos) die("no micro array in " + path);
  std::size_t pos = micro_at;
  for (;;) {
    const std::size_t open = text.find('{', pos + 1);
    if (open == std::string::npos) break;
    const std::size_t close = text.find('}', open);
    if (close == std::string::npos) die("unbalanced micro object in " + path);
    const std::string where = path + " micro[" +
                              std::to_string(out.micro.size()) + "]";
    const std::string obj = text.substr(open, close - open + 1);
    Row row;
    row.name = raw_value(obj, "name", 0, where);
    row.steps = static_cast<long long>(num_value(obj, "steps", 0, where));
    row.reference_ms = num_value(obj, "reference_ms", 0, where);
    row.speedup = num_value(obj, "speedup", 0, where);
    out.micro.push_back(std::move(row));
    pos = close;
  }
  if (out.micro.empty()) die("empty micro array in " + path);
  return out;
}

std::optional<Row> find_row(const BenchFile& file, const std::string& name) {
  for (const auto& row : file.micro) {
    if (row.name == name) return row;
  }
  return std::nullopt;
}

}  // namespace

int main(int argc, char** argv) {
  std::vector<std::string> paths;
  double tolerance = 0.30;
  double min_ms = 0.25;
  long long min_steps = 500;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--tolerance" && i + 1 < argc) {
      tolerance = std::atof(argv[++i]);
    } else if (arg == "--min-steps" && i + 1 < argc) {
      min_steps = std::atoll(argv[++i]);
    } else if (arg == "--min-ms" && i + 1 < argc) {
      min_ms = std::atof(argv[++i]);
    } else if (!arg.empty() && arg[0] != '-') {
      paths.push_back(arg);
    } else {
      std::cerr << "usage: check_bench_regression BASELINE.json CURRENT.json"
                   " [--tolerance T] [--min-steps N] [--min-ms MS]\n";
      return 1;
    }
  }
  if (paths.size() != 2) die("need exactly BASELINE.json and CURRENT.json");

  const BenchFile baseline = parse(paths[0]);
  const BenchFile current = parse(paths[1]);
  if (baseline.mode != current.mode) {
    die("mode mismatch: baseline is '" + baseline.mode + "', current is '" +
        current.mode + "' — compare like with like");
  }

  bool regressed = false;
  const auto check = [&](const std::string& name, double base, double cur) {
    const double floor = base * (1.0 - tolerance);
    const bool bad = cur < floor;
    std::cout << (bad ? "FAIL " : "ok   ") << name << ": speedup " << cur
              << " vs baseline " << base << " (floor " << floor << ")\n";
    regressed = regressed || bad;
  };

  if (baseline.campaign_scenarios == current.campaign_scenarios) {
    check("campaign/thm3-preset", baseline.campaign_speedup,
          current.campaign_speedup);
  } else {
    std::cout << "skip campaign/thm3-preset: scenario count changed ("
              << baseline.campaign_scenarios << " -> "
              << current.campaign_scenarios << ")\n";
  }

  for (const auto& base_row : baseline.micro) {
    const auto cur_row = find_row(current, base_row.name);
    if (!cur_row) {
      std::cout << "FAIL " << base_row.name << ": row missing from current\n";
      regressed = true;
      continue;
    }
    if (base_row.steps < min_steps || base_row.reference_ms < min_ms) {
      std::cout << "skip " << base_row.name << ": noise-dominated (steps "
                << base_row.steps << ", ref " << base_row.reference_ms
                << " ms)\n";
      continue;
    }
    check(base_row.name, base_row.speedup, cur_row->speedup);
  }

  if (regressed) {
    std::cerr << "\nbench regression beyond " << tolerance * 100
              << "% tolerance — see FAIL rows above\n";
    return 2;
  }
  std::cout << "\nno bench regression (tolerance " << tolerance * 100
            << "%)\n";
  return 0;
}
