#!/usr/bin/env python3
"""Doc-drift checks for the CI doc-drift job.

Two checks, both fatal:

1. Registry table: the markdown table embedded in docs/ARCHITECTURE.md
   between the `<!-- protocol-table:begin -->` / `<!-- protocol-table:end -->`
   markers must match `specstab list --markdown` byte for byte.  This is
   what keeps the docs' protocol inventory from drifting as protocols
   are registered: regenerate the block from the binary, don't hand-edit.

2. Links: every intra-repo markdown link in the repo's tracked *.md
   files must resolve to an existing file (anchors are stripped;
   http(s)/mailto links are ignored).

Usage:
    tools/check_docs.py --binary build/specstab [--repo .]

Exit code 0 when clean, 1 with a per-finding report otherwise.
"""

import argparse
import pathlib
import re
import subprocess
import sys

TABLE_BEGIN = "<!-- protocol-table:begin -->"
TABLE_END = "<!-- protocol-table:end -->"

# [text](target) — excludes images via the negative lookbehind; target
# captured up to the first closing paren (no nested-paren targets in
# this repo's docs).
LINK_RE = re.compile(r"(?<!\!)\[[^\]]*\]\(([^)\s]+)\)")


def find_markdown_files(repo: pathlib.Path) -> list[pathlib.Path]:
    out = subprocess.run(
        ["git", "ls-files", "*.md", "**/*.md"],
        cwd=repo,
        capture_output=True,
        text=True,
        check=True,
    )
    return [repo / line for line in out.stdout.splitlines() if line]


def check_protocol_table(repo: pathlib.Path, binary: str) -> list[str]:
    errors = []
    arch = repo / "docs" / "ARCHITECTURE.md"
    text = arch.read_text(encoding="utf-8")
    begin = text.find(TABLE_BEGIN)
    end = text.find(TABLE_END)
    if begin < 0 or end < 0 or end < begin:
        return [f"{arch}: protocol-table markers missing or out of order"]
    embedded = text[begin + len(TABLE_BEGIN) : end].strip("\n")

    generated = subprocess.run(
        [binary, "list", "--markdown"],
        capture_output=True,
        text=True,
        check=True,
    ).stdout.strip("\n")

    if embedded != generated:
        errors.append(
            f"{arch}: embedded protocol table differs from"
            " `specstab list --markdown`"
        )
        embedded_lines = embedded.splitlines()
        generated_lines = generated.splitlines()
        width = max(len(embedded_lines), len(generated_lines))
        for i in range(width):
            doc = embedded_lines[i] if i < len(embedded_lines) else "<missing>"
            gen = (
                generated_lines[i] if i < len(generated_lines) else "<missing>"
            )
            if doc != gen:
                errors.append(f"  line {i + 1} docs: {doc}")
                errors.append(f"  line {i + 1} tool: {gen}")
        errors.append(
            "  fix: re-run `specstab list --markdown` and paste the output"
            " between the markers"
        )
    return errors


def check_links(repo: pathlib.Path, files: list[pathlib.Path]) -> list[str]:
    errors = []
    for md in files:
        text = md.read_text(encoding="utf-8")
        for lineno, line in enumerate(text.splitlines(), start=1):
            for match in LINK_RE.finditer(line):
                target = match.group(1)
                if target.startswith(("http://", "https://", "mailto:")):
                    continue
                path_part = target.split("#", 1)[0]
                if not path_part:  # same-file anchor
                    continue
                resolved = (md.parent / path_part).resolve()
                if not resolved.exists():
                    rel = md.relative_to(repo)
                    errors.append(
                        f"{rel}:{lineno}: broken link `{target}`"
                        f" (no such file: {path_part})"
                    )
    return errors


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--binary",
        default="build/specstab",
        help="path to the specstab binary (for `list --markdown`)",
    )
    parser.add_argument(
        "--repo", default=".", help="repository root (default: cwd)"
    )
    args = parser.parse_args()

    repo = pathlib.Path(args.repo).resolve()
    errors = []
    errors += check_protocol_table(repo, args.binary)
    errors += check_links(repo, find_markdown_files(repo))

    if errors:
        print("doc-drift check FAILED:", file=sys.stderr)
        for e in errors:
            print(f"  {e}", file=sys.stderr)
        return 1
    print("doc-drift check passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())
