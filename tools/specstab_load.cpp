// Load generator for `specstab serve`: N client connections driving a
// seeded mixed sweep of `run` requests over the wire protocol, with a
// configurable cache-hit ratio, reporting sessions/sec and latency
// percentiles as one JSON object on stdout.
//
//   specstab_load --port P [--connections N] [--requests R]
//                 [--hit-ratio H] [--seed S]
//   specstab_load --unix PATH [...]
//
// The hit ratio is engineered, not hoped for: each request draws, with
// probability H, a spec from a small fixed "hot" pool (identical
// canonical tuples — cache hits once warm) and otherwise a
// never-repeated unique seed (guaranteed miss).  All draws come from a
// seeded generator, so a given (--seed, --connections, --requests,
// --hit-ratio) emits the same request sequence every time.
//
// Exit code: 0 when every request got a result reply, 1 otherwise —
// the CI serve job uses it as a smoke gate.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <random>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "serve/client.hpp"
#include "serve/json.hpp"
#include "serve/transport.hpp"

namespace {

using specstab::serve::Endpoint;
using specstab::serve::JsonValue;
using specstab::serve::LineClient;

struct LoadOptions {
  Endpoint endpoint = Endpoint::tcp(0);
  bool have_endpoint = false;
  unsigned connections = 4;
  unsigned requests = 50;  // per connection
  double hit_ratio = 0.5;
  std::uint64_t seed = 1;
};

constexpr const char* kUsage =
    "usage: specstab_load (--port P | --unix PATH) [--connections N]\n"
    "                     [--requests R] [--hit-ratio H] [--seed S]\n";

// The hot pool: distinct canonical tuples re-requested verbatim.  Small
// topologies keep per-session cost low enough that the generator
// measures the serve path, not the simulator.
struct HotSpec {
  const char* protocol;
  const char* topology;
  const char* daemon;
};
constexpr HotSpec kHotPool[] = {
    {"ssme", "ring 12", "synchronous"},
    {"ssme", "ring 16", "central-rr"},
    {"coloring", "ring 12", "central-rr"},
    {"min-plus-one", "torus 3 4", "synchronous"},
    {"leader", "ring 12", "central-rr"},
    {"matching", "torus 3 4", "central-rr"},
};
constexpr std::size_t kHotPoolSize = sizeof(kHotPool) / sizeof(kHotPool[0]);

[[nodiscard]] std::string request_line(std::uint64_t id, const HotSpec& spec,
                                       std::uint64_t seed) {
  return "{\"id\":" + std::to_string(id) +
         ",\"method\":\"run\",\"params\":{\"protocol\":\"" + spec.protocol +
         "\",\"topology\":\"" + spec.topology + "\",\"daemon\":\"" +
         spec.daemon + "\",\"seed\":" + std::to_string(seed) + "}}";
}

struct WorkerResult {
  std::vector<double> latencies_us;
  unsigned errors = 0;
};

void run_worker(const LoadOptions& opt, unsigned worker_index,
                WorkerResult& out) {
  // Per-worker stream split off the master seed, so the sequence is
  // reproducible regardless of thread interleaving.
  std::mt19937_64 rng(opt.seed * 0x9e3779b97f4a7c15ull + worker_index);
  std::uniform_real_distribution<double> coin(0.0, 1.0);
  std::uniform_int_distribution<std::size_t> hot(0, kHotPoolSize - 1);
  try {
    LineClient client(opt.endpoint);
    out.latencies_us.reserve(opt.requests);
    for (unsigned r = 0; r < opt.requests; ++r) {
      std::string line;
      const std::uint64_t id =
          static_cast<std::uint64_t>(worker_index) * opt.requests + r;
      if (coin(rng) < opt.hit_ratio) {
        // Hot pool entries use a fixed seed: same canonical tuple.
        line = request_line(id, kHotPool[hot(rng)], 7);
      } else {
        // Unique-seed cold request (hot seed 7 never collides: unique
        // seeds start above any realistic request count).
        line = request_line(id, kHotPool[hot(rng)], 1000000 + id);
      }
      const auto begin = std::chrono::steady_clock::now();
      const std::string reply = client.roundtrip(line);
      const auto end = std::chrono::steady_clock::now();
      out.latencies_us.push_back(
          std::chrono::duration<double, std::micro>(end - begin).count());
      const JsonValue parsed = JsonValue::parse(reply);
      if (parsed.find("result") == nullptr) ++out.errors;
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "specstab_load: worker %u: %s\n", worker_index,
                 e.what());
    ++out.errors;
  }
}

[[nodiscard]] double percentile(std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  const double rank = p * static_cast<double>(sorted.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, sorted.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return sorted[lo] + (sorted[hi] - sorted[lo]) * frac;
}

}  // namespace

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  LoadOptions opt;
  try {
    for (std::size_t i = 0; i < args.size(); ++i) {
      const std::string& arg = args[i];
      const auto value = [&]() -> const std::string& {
        if (i + 1 >= args.size()) {
          throw std::invalid_argument("specstab_load: " + arg +
                                      " needs a value");
        }
        return args[++i];
      };
      if (arg == "--port") {
        opt.endpoint = Endpoint::tcp(
            static_cast<std::uint16_t>(std::stoul(value())));
        opt.have_endpoint = true;
      } else if (arg == "--unix") {
        opt.endpoint = Endpoint::unix_path(value());
        opt.have_endpoint = true;
      } else if (arg == "--connections") {
        opt.connections = static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--requests") {
        opt.requests = static_cast<unsigned>(std::stoul(value()));
      } else if (arg == "--hit-ratio") {
        opt.hit_ratio = std::stod(value());
        if (opt.hit_ratio < 0.0 || opt.hit_ratio > 1.0) {
          throw std::invalid_argument(
              "specstab_load: --hit-ratio must be in [0, 1]");
        }
      } else if (arg == "--seed") {
        opt.seed = std::stoull(value());
      } else if (arg == "--help" || arg == "-h") {
        std::fputs(kUsage, stdout);
        return 0;
      } else {
        throw std::invalid_argument("specstab_load: unknown option '" + arg +
                                    "'");
      }
    }
    if (!opt.have_endpoint || opt.connections == 0 || opt.requests == 0) {
      throw std::invalid_argument(
          "specstab_load: need --port or --unix, and nonzero "
          "--connections/--requests");
    }
  } catch (const std::exception& e) {
    std::fprintf(stderr, "%s\n%s", e.what(), kUsage);
    return 2;
  }

  std::vector<WorkerResult> results(opt.connections);
  std::vector<std::thread> threads;
  threads.reserve(opt.connections);
  const auto begin = std::chrono::steady_clock::now();
  for (unsigned c = 0; c < opt.connections; ++c) {
    threads.emplace_back(
        [&opt, c, &results] { run_worker(opt, c, results[c]); });
  }
  for (auto& t : threads) t.join();
  const auto end = std::chrono::steady_clock::now();
  const double elapsed_ms =
      std::chrono::duration<double, std::milli>(end - begin).count();

  std::vector<double> latencies;
  unsigned errors = 0;
  for (const WorkerResult& r : results) {
    latencies.insert(latencies.end(), r.latencies_us.begin(),
                     r.latencies_us.end());
    errors += r.errors;
  }
  std::sort(latencies.begin(), latencies.end());
  const double sessions = static_cast<double>(latencies.size());
  const double sessions_per_sec =
      elapsed_ms > 0.0 ? sessions / (elapsed_ms / 1000.0) : 0.0;

  std::printf(
      "{\"connections\": %u, \"requests_per_connection\": %u, "
      "\"hit_ratio\": %.3f, \"seed\": %llu, \"completed\": %zu, "
      "\"errors\": %u, \"elapsed_ms\": %.3f, \"sessions_per_sec\": %.1f, "
      "\"latency_us\": {\"p50\": %.1f, \"p95\": %.1f, \"p99\": %.1f}}\n",
      opt.connections, opt.requests, opt.hit_ratio,
      static_cast<unsigned long long>(opt.seed), latencies.size(), errors,
      elapsed_ms, sessions_per_sec, percentile(latencies, 0.50),
      percentile(latencies, 0.95), percentile(latencies, 0.99));
  return errors == 0 ? 0 : 1;
}
