// The `specstab` command-line tool: a thin wrapper over cli::run_cli so
// that all behaviour lives in the tested library module.  The one
// exception is `serve`, a process-level verb (sockets, signal handlers,
// a blocking drain) that cannot be a buffered request/response
// subcommand — it dispatches to serve::serve_main directly.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"
#include "serve/serve_cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  if (!args.empty() && args[0] == "serve") {
    return specstab::serve::serve_main(
        std::vector<std::string>(args.begin() + 1, args.end()));
  }
  const auto result = specstab::cli::run_cli(args);
  std::cout << result.output;
  return result.exit_code;
}
