// The `specstab` command-line tool: a thin wrapper over cli::run_cli so
// that all behaviour lives in the tested library module.
#include <iostream>
#include <string>
#include <vector>

#include "cli/cli.hpp"

int main(int argc, char** argv) {
  const std::vector<std::string> args(argv + 1, argv + argc);
  const auto result = specstab::cli::run_cli(args);
  std::cout << result.output;
  return result.exit_code;
}
